#include "obs/metrics.hpp"

#include "obs/progress.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "pp/engine.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"

namespace ssr::obs {
namespace {

TEST(ObsMetrics, CounterGaugeHistogram) {
  metrics_registry reg;
  counter& c = reg.get_counter("c");
  c.add(3);
  c.add(1);
  EXPECT_EQ(c.value(), 4u);
  reg.get_gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(reg.get_gauge("g").value(), 2.5);
  histogram& h = reg.get_histogram("h");
  for (const double x : {1.0, 2.0, 4.0, 4.0}) h.record(x);
  const histogram::snapshot_data snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 11.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
  metrics_registry reg;
  counter& a = reg.get_counter("same");
  counter& b = reg.get_counter("same");
  EXPECT_EQ(&a, &b);
  a.add(1);
  EXPECT_EQ(b.value(), 1u);
}

TEST(ObsMetrics, SnapshotIsJson) {
  metrics_registry reg;
  reg.get_counter("runs").add(7);
  reg.get_histogram("secs").record(0.5);
  const json_value snap = reg.snapshot();
  ASSERT_TRUE(snap.is_object());
  ASSERT_NE(snap.find("runs"), nullptr);
  EXPECT_EQ(snap.find("runs")->as_uint64(), 7u);
  ASSERT_NE(snap.find("secs"), nullptr);
  EXPECT_TRUE(snap.find("secs")->is_object());
}

TEST(ObsMetrics, AbsorbEngineCounters) {
  engine_counters c;
  c.interactions_executed = 10;
  c.certain_nulls_skipped = 90;
  metrics_registry reg;
  reg.absorb(c);
  EXPECT_EQ(reg.get_counter("engine.interactions_executed").value(), 10u);
  EXPECT_EQ(reg.get_counter("engine.certain_nulls_skipped").value(), 90u);
  // absorb() is additive: folding the same counters in again doubles them.
  reg.absorb(c);
  EXPECT_EQ(reg.get_counter("engine.interactions_executed").value(), 20u);
  EXPECT_EQ(reg.get_counter("engine.certain_nulls_skipped").value(), 180u);
}

TEST(ObsMetrics, HistogramQuantilesFromSketch) {
  histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(i);
  const histogram::snapshot_data snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_NEAR(snap.p50, 500.5, 10.0);
  EXPECT_NEAR(snap.p90, 900.0, 10.0);
  EXPECT_NEAR(snap.p99, 990.0, 10.0);
  EXPECT_DOUBLE_EQ(snap.sum_squares, 1000.0 * 1001.0 * 2001.0 / 6.0);
  const json_value j = h.to_json();
  ASSERT_NE(j.find("p50"), nullptr);
  ASSERT_NE(j.find("p99"), nullptr);
  EXPECT_NEAR(j.find("p90")->as_double(), 900.0, 10.0);
}

TEST(ObsMetrics, HistogramMergeIsAdditive) {
  histogram a, b;
  for (int i = 1; i <= 100; ++i) a.record(i);
  for (int i = 101; i <= 200; ++i) b.record(i);
  a.merge(b);
  const histogram::snapshot_data snap = a.snapshot();
  EXPECT_EQ(snap.count, 200u);
  EXPECT_DOUBLE_EQ(snap.sum, 200.0 * 201.0 / 2.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 200.0);
  EXPECT_NEAR(snap.p50, 100.5, 5.0);
  // Merging an empty histogram changes nothing.
  histogram empty;
  a.merge(empty);
  EXPECT_EQ(a.snapshot().count, 200u);
}

TEST(ObsMetrics, AbsorbRegistryTwiceIsAdditive) {
  metrics_registry source;
  source.get_counter("trials.completed").add(5);
  source.get_gauge("params.n").set(64.0);
  source.get_histogram("trial.seconds").record(1.5);
  source.get_histogram("trial.seconds").record(2.5);

  metrics_registry target;
  target.absorb(source);
  target.absorb(source);
  EXPECT_EQ(target.get_counter("trials.completed").value(), 10u);
  EXPECT_DOUBLE_EQ(target.get_gauge("params.n").value(), 64.0);
  const histogram::snapshot_data snap =
      target.get_histogram("trial.seconds").snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 8.0);
  // Self-absorb is a documented no-op.
  target.absorb(target);
  EXPECT_EQ(target.get_counter("trials.completed").value(), 10u);
}

// Many threads folding per-worker registries into one shared target while
// the target is also being recorded into directly: counter and histogram
// merges must stay additive and data-race free (run under TSan to enforce
// the latter).
TEST(ObsMetrics, AbsorbRegistryConcurrently) {
  constexpr int threads = 8;
  constexpr int rounds = 50;

  metrics_registry source;
  source.get_counter("work.items").add(3);
  source.get_histogram("work.seconds").record(0.25);

  metrics_registry target;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&target, &source, t] {
      for (int r = 0; r < rounds; ++r) {
        target.absorb(source);
        target.get_counter("work.items").add(1);
        target.get_histogram("work.seconds").record(0.5 + t);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(target.get_counter("work.items").value(),
            static_cast<std::uint64_t>(threads * rounds) * 4);
  const histogram::snapshot_data snap =
      target.get_histogram("work.seconds").snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(threads * rounds) * 2);
}

// The production shape of absorb(): run_trials-style workers each own a
// private registry and fold it into the shared target when they finish,
// concurrently with each other.  With distinct per-worker contents the
// folded totals are exact, so any lost or double merge shows up as a wrong
// count, not just as a TSan report.
TEST(ObsMetrics, AbsorbDistinctWorkerRegistriesConcurrently) {
  constexpr int workers = 8;
  constexpr int folds_per_worker = 25;

  std::vector<metrics_registry> per_worker(workers);
  for (int t = 0; t < workers; ++t) {
    per_worker[t].get_counter("worker.items").add(
        static_cast<std::uint64_t>(t + 1));
    per_worker[t].get_gauge("params.n").set(64.0);
    // Distinct sample values per worker so min/max/sum pin the union.
    per_worker[t].get_histogram("worker.seconds").record(t + 1.0);
    per_worker[t].get_histogram("worker.seconds").record((t + 1.0) * 10.0);
  }

  metrics_registry target;
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int t = 0; t < workers; ++t) {
    threads.emplace_back([&target, &per_worker, t] {
      for (int r = 0; r < folds_per_worker; ++r) {
        target.absorb(per_worker[static_cast<std::size_t>(t)]);
      }
    });
  }
  for (auto& th : threads) th.join();

  // sum(t+1, t=0..7) = 36 items per fold round.
  EXPECT_EQ(target.get_counter("worker.items").value(),
            36u * folds_per_worker);
  EXPECT_DOUBLE_EQ(target.get_gauge("params.n").value(), 64.0);
  const histogram::snapshot_data snap =
      target.get_histogram("worker.seconds").snapshot();
  EXPECT_EQ(snap.count,
            static_cast<std::uint64_t>(workers) * 2 * folds_per_worker);
  // sum(x + 10x, x=1..8) = 11 * 36 per fold round.
  EXPECT_DOUBLE_EQ(snap.sum, 11.0 * 36.0 * folds_per_worker);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 80.0);
}

// merge() summarizes the concatenated streams, so grouping must not
// matter: ((a+b)+c) and (a+(b+c)) answer quantiles identically up to
// t-digest interpolation error.  Three disjoint ranges make the combined
// distribution's quantiles known in closed form.
TEST(ObsMetrics, SketchMergeIsAssociative) {
  const auto fill = [](quantile_sketch& s, int lo, int hi) {
    for (int i = lo; i <= hi; ++i) s.add(i);
  };
  quantile_sketch a1, b1, c1, a2, b2, c2;
  fill(a1, 1, 1000);
  fill(b1, 1001, 2000);
  fill(c1, 2001, 3000);
  fill(a2, 1, 1000);
  fill(b2, 1001, 2000);
  fill(c2, 2001, 3000);

  quantile_sketch left_grouped = a1;  // ((a+b)+c)
  left_grouped.merge(b1);
  left_grouped.merge(c1);
  quantile_sketch bc = b2;  // (a+(b+c))
  bc.merge(c2);
  quantile_sketch right_grouped = a2;
  right_grouped.merge(bc);

  ASSERT_EQ(left_grouped.count(), 3000u);
  ASSERT_EQ(right_grouped.count(), 3000u);
  for (const double q : {0.01, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const double expected = q * 3000.0;  // uniform 1..3000
    EXPECT_NEAR(left_grouped.quantile(q), expected, 0.02 * 3000.0) << q;
    EXPECT_NEAR(left_grouped.quantile(q), right_grouped.quantile(q),
                0.02 * 3000.0)
        << q;
  }
}

TEST(ObsMetrics, EngineCountersToJsonHasEveryField) {
  engine_counters c;
  c.interactions_executed = 1;
  const json_value v = to_json(c);
  for (const char* field :
       {"interactions_executed", "certain_nulls_skipped",
        "transitions_changed", "fenwick_updates", "geometric_draws",
        "quiescent_jumps", "batches_drawn"}) {
    EXPECT_NE(v.find(field), nullptr) << field;
  }
}

// The central accounting contract (obs/engine_counters.hpp): hooks see
// exactly the executed interactions, skipped certain-nulls are charged to
// the budget, and the two always sum to engine.interactions().  The
// count-based batched engine exercises the geometric-skip, over-budget and
// quiescent-jump paths; silent_n_state from a random start goes quiescent
// well inside the budget, so all three fire.
TEST(ObsMetrics, BatchedEngineCounterInvariant) {
  const std::uint32_t n = 64;
  silent_n_state_ssr p(n);
  rng_t rng(41);
  auto init = adversarial_configuration(p, rng);
  batched_engine<silent_n_state_ssr> eng(p, std::move(init), 42);
  engine_counters c;
  eng.attach_counters(&c);

  std::uint64_t pre_calls = 0, post_calls = 0, changed_calls = 0;
  const std::uint64_t budget = std::uint64_t{200} * n * n;
  eng.run(budget, [&](const agent_pair&) { ++pre_calls; },
          [&](const agent_pair&, bool changed) {
            ++post_calls;
            changed_calls += changed;
            return false;
          });

  EXPECT_EQ(eng.interactions(), budget);
  EXPECT_EQ(c.interactions_executed, pre_calls);
  EXPECT_EQ(c.interactions_executed, post_calls);
  EXPECT_EQ(c.transitions_changed, changed_calls);
  EXPECT_EQ(c.interactions_executed + c.certain_nulls_skipped,
            eng.interactions());
  // A random start on n=64 has duplicate ranks, so skipping really happened
  // and quiescence was reached (the budget is ~200n parallel time units,
  // stabilization takes Theta(n)).
  EXPECT_GT(c.certain_nulls_skipped, 0u);
  EXPECT_GT(c.geometric_draws, 0u);
  EXPECT_GE(c.quiescent_jumps, 1u);
  EXPECT_TRUE(eng.quiescent());
}

TEST(ObsMetrics, DirectEngineCounterInvariant) {
  const std::uint32_t n = 32;
  optimal_silent_ssr p(n);
  rng_t rng(7);
  auto init =
      adversarial_configuration(p, optimal_silent_scenario::no_leader, rng);
  direct_engine<optimal_silent_ssr> eng(p, std::move(init), 8);
  engine_counters c;
  eng.attach_counters(&c);

  std::uint64_t post_calls = 0;
  const std::uint64_t budget = 5000;
  eng.run(budget, [](const agent_pair&) {},
          [&](const agent_pair&, bool) {
            ++post_calls;
            return false;
          });
  // The direct engine executes every interaction: nothing is ever skipped.
  EXPECT_EQ(c.interactions_executed, budget);
  EXPECT_EQ(post_calls, budget);
  EXPECT_EQ(c.certain_nulls_skipped, 0u);
  EXPECT_EQ(c.interactions_executed + c.certain_nulls_skipped,
            eng.interactions());
}

TEST(ObsMetrics, CountersAccumulateAcrossRuns) {
  const std::uint32_t n = 16;
  silent_n_state_ssr p(n);
  rng_t rng(3);
  auto init = adversarial_configuration(p, rng);
  batched_engine<silent_n_state_ssr> eng(p, std::move(init), 4);
  engine_counters c;
  eng.attach_counters(&c);
  eng.run(1000, [](const agent_pair&) {},
          [](const agent_pair&, bool) { return false; });
  eng.run(2000, [](const agent_pair&) {},
          [](const agent_pair&, bool) { return false; });
  EXPECT_EQ(c.interactions_executed + c.certain_nulls_skipped, 2000u);
}

// The heartbeat formatter is pure: registry snapshot in, one line out.
TEST(ObsProgress, SampleReadsRegistryKeysAndFormatterRendersEta) {
  metrics_registry registry;
  registry.get_counter("trials.completed").add(12);
  registry.get_gauge("run.parallel_time").set(500.0);
  registry.get_gauge("run.max_parallel_time").set(1000.0);
  registry.get_gauge("engine.interactions_executed").set(3.0e6);

  const progress_sample current = read_progress_sample(registry.snapshot());
  EXPECT_DOUBLE_EQ(current.trials_completed, 12.0);
  EXPECT_DOUBLE_EQ(current.parallel_time, 500.0);
  EXPECT_DOUBLE_EQ(current.max_parallel_time, 1000.0);
  EXPECT_DOUBLE_EQ(current.interactions, 3.0e6);

  progress_sample baseline;  // all zero
  progress_sample previous;
  previous.interactions = 1.0e6;
  const progress_options options{.total_trials = 60, .label = "bench"};
  // 12/60 trials after 6s at 2 trials/s -> 24s to go; interactions rate is
  // the delta over one 2s interval.
  const std::string line = format_progress_line(
      options, baseline, previous, current, /*interval_seconds=*/2.0,
      /*elapsed_seconds=*/6.0);
  EXPECT_NE(line.find("[bench]"), std::string::npos) << line;
  EXPECT_NE(line.find("trials 12/60 (20%)"), std::string::npos) << line;
  EXPECT_NE(line.find("ETA 24s"), std::string::npos) << line;
  EXPECT_NE(line.find("t=500/1000 (50%)"), std::string::npos) << line;
  EXPECT_NE(line.find("1.00e+06 interactions/s"), std::string::npos) << line;
}

TEST(ObsProgress, FormatterStaysSilentWithNothingToReport) {
  const progress_sample zero;
  EXPECT_EQ(format_progress_line({}, zero, zero, zero, 2.0, 2.0), "");
}

TEST(ObsProgress, MeterStopsCleanlyBeforeFirstInterval) {
  metrics_registry registry;
  progress_meter meter(registry, {.interval_seconds = 60.0});
  meter.stop();  // must join without waiting out the interval
  meter.stop();  // idempotent
}

TEST(ObsProgress, ManyThreadsStopConcurrently) {
  // Shard workers (or any concurrent driver) may race to shut the heartbeat
  // down; every stop() must return only after the meter thread exited, with
  // exactly one caller doing the join.  Runs under TSan via the
  // concurrency_suites target.
  for (int round = 0; round < 20; ++round) {
    metrics_registry registry;
    progress_meter meter(registry, {.interval_seconds = 60.0});
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t) stoppers.emplace_back([&] { meter.stop(); });
    meter.stop();
    for (auto& t : stoppers) t.join();
  }
}

TEST(ObsProgress, DefaultSwitchRoundTrips) {
  set_progress_default(true);
  EXPECT_TRUE(progress_default());
  set_progress_default(false);
  EXPECT_FALSE(progress_default());
}

}  // namespace
}  // namespace ssr::obs
