#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "pp/engine.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"

namespace ssr::obs {
namespace {

TEST(ObsMetrics, CounterGaugeHistogram) {
  metrics_registry reg;
  counter& c = reg.get_counter("c");
  c.add(3);
  c.add(1);
  EXPECT_EQ(c.value(), 4u);
  reg.get_gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(reg.get_gauge("g").value(), 2.5);
  histogram& h = reg.get_histogram("h");
  for (const double x : {1.0, 2.0, 4.0, 4.0}) h.record(x);
  const histogram::snapshot_data snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 11.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 4.0);
}

TEST(ObsMetrics, RegistryReturnsStableReferences) {
  metrics_registry reg;
  counter& a = reg.get_counter("same");
  counter& b = reg.get_counter("same");
  EXPECT_EQ(&a, &b);
  a.add(1);
  EXPECT_EQ(b.value(), 1u);
}

TEST(ObsMetrics, SnapshotIsJson) {
  metrics_registry reg;
  reg.get_counter("runs").add(7);
  reg.get_histogram("secs").record(0.5);
  const json_value snap = reg.snapshot();
  ASSERT_TRUE(snap.is_object());
  ASSERT_NE(snap.find("runs"), nullptr);
  EXPECT_EQ(snap.find("runs")->as_uint64(), 7u);
  ASSERT_NE(snap.find("secs"), nullptr);
  EXPECT_TRUE(snap.find("secs")->is_object());
}

TEST(ObsMetrics, AbsorbEngineCounters) {
  engine_counters c;
  c.interactions_executed = 10;
  c.certain_nulls_skipped = 90;
  metrics_registry reg;
  reg.absorb(c);
  EXPECT_EQ(reg.get_counter("engine.interactions_executed").value(), 10u);
  EXPECT_EQ(reg.get_counter("engine.certain_nulls_skipped").value(), 90u);
}

TEST(ObsMetrics, EngineCountersToJsonHasEveryField) {
  engine_counters c;
  c.interactions_executed = 1;
  const json_value v = to_json(c);
  for (const char* field :
       {"interactions_executed", "certain_nulls_skipped",
        "transitions_changed", "fenwick_updates", "geometric_draws",
        "quiescent_jumps", "batches_drawn"}) {
    EXPECT_NE(v.find(field), nullptr) << field;
  }
}

// The central accounting contract (obs/engine_counters.hpp): hooks see
// exactly the executed interactions, skipped certain-nulls are charged to
// the budget, and the two always sum to engine.interactions().  The
// count-based batched engine exercises the geometric-skip, over-budget and
// quiescent-jump paths; silent_n_state from a random start goes quiescent
// well inside the budget, so all three fire.
TEST(ObsMetrics, BatchedEngineCounterInvariant) {
  const std::uint32_t n = 64;
  silent_n_state_ssr p(n);
  rng_t rng(41);
  auto init = adversarial_configuration(p, rng);
  batched_engine<silent_n_state_ssr> eng(p, std::move(init), 42);
  engine_counters c;
  eng.attach_counters(&c);

  std::uint64_t pre_calls = 0, post_calls = 0, changed_calls = 0;
  const std::uint64_t budget = std::uint64_t{200} * n * n;
  eng.run(budget, [&](const agent_pair&) { ++pre_calls; },
          [&](const agent_pair&, bool changed) {
            ++post_calls;
            changed_calls += changed;
            return false;
          });

  EXPECT_EQ(eng.interactions(), budget);
  EXPECT_EQ(c.interactions_executed, pre_calls);
  EXPECT_EQ(c.interactions_executed, post_calls);
  EXPECT_EQ(c.transitions_changed, changed_calls);
  EXPECT_EQ(c.interactions_executed + c.certain_nulls_skipped,
            eng.interactions());
  // A random start on n=64 has duplicate ranks, so skipping really happened
  // and quiescence was reached (the budget is ~200n parallel time units,
  // stabilization takes Theta(n)).
  EXPECT_GT(c.certain_nulls_skipped, 0u);
  EXPECT_GT(c.geometric_draws, 0u);
  EXPECT_GE(c.quiescent_jumps, 1u);
  EXPECT_TRUE(eng.quiescent());
}

TEST(ObsMetrics, DirectEngineCounterInvariant) {
  const std::uint32_t n = 32;
  optimal_silent_ssr p(n);
  rng_t rng(7);
  auto init =
      adversarial_configuration(p, optimal_silent_scenario::no_leader, rng);
  direct_engine<optimal_silent_ssr> eng(p, std::move(init), 8);
  engine_counters c;
  eng.attach_counters(&c);

  std::uint64_t post_calls = 0;
  const std::uint64_t budget = 5000;
  eng.run(budget, [](const agent_pair&) {},
          [&](const agent_pair&, bool) {
            ++post_calls;
            return false;
          });
  // The direct engine executes every interaction: nothing is ever skipped.
  EXPECT_EQ(c.interactions_executed, budget);
  EXPECT_EQ(post_calls, budget);
  EXPECT_EQ(c.certain_nulls_skipped, 0u);
  EXPECT_EQ(c.interactions_executed + c.certain_nulls_skipped,
            eng.interactions());
}

TEST(ObsMetrics, CountersAccumulateAcrossRuns) {
  const std::uint32_t n = 16;
  silent_n_state_ssr p(n);
  rng_t rng(3);
  auto init = adversarial_configuration(p, rng);
  batched_engine<silent_n_state_ssr> eng(p, std::move(init), 4);
  engine_counters c;
  eng.attach_counters(&c);
  eng.run(1000, [](const agent_pair&) {},
          [](const agent_pair&, bool) { return false; });
  eng.run(2000, [](const agent_pair&) {},
          [](const agent_pair&, bool) { return false; });
  EXPECT_EQ(c.interactions_executed + c.certain_nulls_skipped, 2000u);
}

}  // namespace
}  // namespace ssr::obs
