// Contrast tests: why self-stabilization is hard.
//
// 1. The 2-state initialized protocol (l,l)->(l,f) elects a unique leader
//    from its designated start, but is stuck forever from the all-followers
//    configuration -- one transient fault away.
// 2. Theorem 2.1's nonuniformity argument, executed: embedding a stable
//    single-leader population of a *smaller* size inside a larger one makes
//    the baseline protocol produce extra leaders (the larger population
//    cannot be stable under the smaller population's transitions).
#include <gtest/gtest.h>

#include "pp/simulation.hpp"
#include "protocols/initialized.hpp"
#include "protocols/silent_n_state.hpp"

namespace ssr {
namespace {

std::size_t leaders(const initialized_leader_election& p,
                    std::span<const initialized_leader_election::agent_state> a) {
  std::size_t count = 0;
  for (const auto& s : a) count += p.rank_of(s) == 1 ? 1 : 0;
  return count;
}

TEST(Initialized, ElectsUniqueLeaderFromDesignatedStart) {
  const std::uint32_t n = 64;
  initialized_leader_election p(n);
  simulation<initialized_leader_election> sim(p, p.initial_configuration(), 3);
  const bool done = sim.run_until(
      [&](const simulation<initialized_leader_election>& s) {
        return leaders(s.protocol(), s.agents()) == 1;
      },
      10'000'000ull);
  ASSERT_TRUE(done);
  // Stable: the single leader can never be eliminated.
  for (int i = 0; i < 100000; ++i) sim.step();
  EXPECT_EQ(leaders(p, sim.agents()), 1u);
}

TEST(Initialized, UsesTwoStates) {
  EXPECT_EQ(initialized_leader_election::state_count(1000), 2u);
}

TEST(Initialized, AllFollowersIsPermanentFailure) {
  const std::uint32_t n = 16;
  initialized_leader_election p(n);
  simulation<initialized_leader_election> sim(p, p.all_followers(), 5);
  // The all-followers configuration is silent and leaderless forever.
  EXPECT_TRUE(sim.is_silent_configuration());
  for (int i = 0; i < 100000; ++i) sim.step();
  EXPECT_EQ(leaders(p, sim.agents()), 0u);
}

// Theorem 2.1, executed.  Take the baseline protocol *for population size
// n1* and run it in a population of size n2 > n1 whose first n1 agents form
// the stable single-leader configuration.  Interactions among the extra
// agents (which duplicate existing ranks) must eventually push some agent
// back to rank 0, i.e. create a second leader: the same transition table
// cannot be stable for two population sizes.
TEST(Nonuniformity, SmallerProtocolInLargerPopulationCreatesExtraLeaders) {
  const std::uint32_t n1 = 8;
  const std::uint32_t n2 = 12;
  // The protocol object believes the population size is n1 (its transitions
  // are "rank + 1 mod n1"), but we schedule n2 agents.  To express this we
  // construct the protocol with n1 and hand the simulation n2 agents via a
  // wrapper protocol reporting n2.
  struct oversized_baseline {
    using agent_state = silent_n_state_ssr::agent_state;
    silent_n_state_ssr inner;
    std::uint32_t n2;
    std::uint32_t population_size() const { return n2; }
    bool interact(agent_state& a, agent_state& b, rng_t& rng) const {
      return inner.interact(a, b, rng);
    }
    std::uint32_t rank_of(const agent_state& s) const {
      return inner.rank_of(s);
    }
  };
  oversized_baseline p{silent_n_state_ssr(n1), n2};

  std::vector<silent_n_state_ssr::agent_state> config(n2);
  for (std::uint32_t i = 0; i < n2; ++i) config[i].rank = i % n1;
  // Initially there is exactly one agent at rank 0 among the first n1...
  // plus agent 8 also at rank 0 (duplicates are unavoidable by pigeonhole).
  simulation<oversized_baseline> sim(p, std::move(config), 9);

  // Track how often the configuration holds more than one leader (rank 0).
  std::size_t multi_leader_observations = 0;
  for (int i = 0; i < 200000; ++i) {
    sim.step();
    std::size_t leaders = 0;
    for (const auto& s : sim.agents()) leaders += s.rank == 0 ? 1 : 0;
    multi_leader_observations += leaders > 1 ? 1 : 0;
  }
  // The run must keep revisiting multi-leader configurations: no stable
  // single-leader configuration exists for the wrong population size.
  EXPECT_GT(multi_leader_observations, 100u);
}

}  // namespace
}  // namespace ssr
