#include "protocols/history_tree.hpp"

#include <gtest/gtest.h>

#include <string>

namespace ssr {
namespace {

name_t nm(const std::string& bits) {
  name_t n;
  for (const char c : bits) n.append_bit(c == '1');
  return n;
}

// Re-enacts Figure 2 (left): interactions a-b (sync 1), b-c (sync 2),
// c-d (sync 3), from singleton trees, using the same tree operations the
// protocol performs.
struct figure2_agents {
  static constexpr std::uint32_t H = 3;
  static constexpr std::uint32_t T = 100;

  history_tree a{nm("00")}, b{nm("01")}, c{nm("10")}, d{nm("11")};

  void meet(history_tree& x, history_tree& y, std::uint32_t sync) {
    const history_tree x_before = x;
    x.graft_partner(y, H - 1, sync, T);
    y.graft_partner(x_before, H - 1, sync, T);
    x.remove_named_subtrees(x.root_name());
    y.remove_named_subtrees(y.root_name());
    // No timer aging here: Figure 2 abstracts from timers.
  }
};

TEST(HistoryTree, SingletonAfterReset) {
  history_tree t(nm("0"));
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.depth(), 0u);
  EXPECT_EQ(t.root_name(), nm("0"));
  EXPECT_TRUE(t.simply_labelled());
}

TEST(HistoryTree, GraftRecordsInteraction) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  // a's tree: a -1-> b; b's tree: b -1-> a.
  EXPECT_EQ(f.a.node_count(), 2u);
  EXPECT_EQ(f.a.depth(), 1u);
  EXPECT_EQ(f.a.root().edges.size(), 1u);
  EXPECT_EQ(f.a.root().edges[0].sync, 1u);
  EXPECT_EQ(f.a.root().edges[0].child.name, nm("01"));
  EXPECT_EQ(f.b.root().edges[0].child.name, nm("00"));
}

TEST(HistoryTree, Figure2LeftBuildsChains) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  f.meet(f.b, f.c, 2);
  f.meet(f.c, f.d, 3);
  // d's tree: d -3-> c -2-> b -1-> a (Figure 2, bottom-right of left panel).
  EXPECT_EQ(f.d.depth(), 3u);
  const tree_node& root = f.d.root();
  ASSERT_EQ(root.edges.size(), 1u);
  EXPECT_EQ(root.edges[0].sync, 3u);
  EXPECT_EQ(root.edges[0].child.name, nm("10"));  // c
  const tree_node& c_node = root.edges[0].child;
  ASSERT_EQ(c_node.edges.size(), 1u);
  EXPECT_EQ(c_node.edges[0].sync, 2u);
  EXPECT_EQ(c_node.edges[0].child.name, nm("01"));  // b
  const tree_node& b_node = c_node.edges[0].child;
  ASSERT_EQ(b_node.edges.size(), 1u);
  EXPECT_EQ(b_node.edges[0].sync, 1u);
  EXPECT_EQ(b_node.edges[0].child.name, nm("00"));  // a
  EXPECT_TRUE(f.d.simply_labelled());
}

// Figure 2 caption, left: when a and d would interact, d checks its path
// d -> c -> b -> a against a's tree (a -1-> b); the first edge of a's
// reversed suffix matches sync 1 -> consistent.
TEST(HistoryTree, Figure2LeftConsistencyCheck) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  f.meet(f.b, f.c, 2);
  f.meet(f.c, f.d, 3);
  EXPECT_FALSE(f.d.detects_collision_against(nm("00"), f.a));
  EXPECT_FALSE(f.a.detects_collision_against(nm("11"), f.d));
}

// Figure 2, right: a-b re-interact (sync 7) before c-d meet; a's reversed
// suffix is a -7-> b -2-> c whose *first* edge mismatches d's record (1),
// but the second (2) matches -> still consistent.
TEST(HistoryTree, Figure2RightReinteractionStaysConsistent) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  f.meet(f.b, f.c, 2);
  f.meet(f.a, f.b, 7);
  f.meet(f.c, f.d, 3);
  // a's tree is now a -7-> b -2-> c.
  ASSERT_EQ(f.a.root().edges.size(), 1u);
  EXPECT_EQ(f.a.root().edges[0].sync, 7u);
  EXPECT_FALSE(f.d.detects_collision_against(nm("00"), f.a));
}

// An impostor with a's name but no matching history is caught.
TEST(HistoryTree, ImpostorWithoutHistoryIsDetected) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  f.meet(f.b, f.c, 2);
  f.meet(f.c, f.d, 3);
  history_tree impostor(nm("00"));  // claims to be a, singleton tree
  EXPECT_TRUE(f.d.detects_collision_against(nm("00"), impostor));
}

// An impostor whose sync values disagree on every edge of the reversed
// suffix is caught.
TEST(HistoryTree, ImpostorWithWrongSyncsIsDetected) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  f.meet(f.b, f.c, 2);
  f.meet(f.c, f.d, 3);
  figure2_agents g;  // an unrelated world with different syncs
  g.meet(g.a, g.b, 40);
  g.meet(g.b, g.c, 50);
  EXPECT_TRUE(f.d.detects_collision_against(nm("00"), g.a));
}

TEST(HistoryTree, ExpiredEdgesDoNotDetect) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  // Age b's record of a beyond T: the stale path must not participate.
  for (std::uint32_t i = 0; i <= figure2_agents::T; ++i)
    f.b.age_edges(/*prune_retention=*/-1);
  history_tree impostor(nm("00"));
  EXPECT_FALSE(f.b.detects_collision_against(nm("00"), impostor));
}

TEST(HistoryTree, GraftReplacesPreviousRecord) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  f.meet(f.a, f.b, 9);
  // Still exactly one record of b at depth 1, with the newer sync.
  ASSERT_EQ(f.a.root().edges.size(), 1u);
  EXPECT_EQ(f.a.root().edges[0].sync, 9u);
}

TEST(HistoryTree, DepthTruncationOnGraft) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  f.meet(f.b, f.c, 2);
  f.meet(f.c, f.d, 3);
  // d now has a depth-3 chain; an H=3 graft truncates it to depth 2 before
  // attaching, so the receiver stays within depth H.
  history_tree e(nm("000"));
  const history_tree e_before = e;
  e.graft_partner(f.d, figure2_agents::H - 1, 5, figure2_agents::T);
  EXPECT_LE(e.depth(), figure2_agents::H);
  EXPECT_TRUE(e.simply_labelled());
}

TEST(HistoryTree, RemoveNamedSubtreesKeepsSimpleLabelling) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  f.meet(f.b, f.c, 2);
  // c's tree contains ... -> b -> a; grafting c into a would create a path
  // a -> c -> b -> a; the own-name scrub removes the trailing a.
  f.meet(f.a, f.c, 4);
  EXPECT_TRUE(f.a.simply_labelled());
}

TEST(HistoryTree, AgeEdgesPrunesAfterRetention) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  EXPECT_EQ(f.a.node_count(), 2u);
  for (std::uint32_t i = 0; i < figure2_agents::T + 5; ++i)
    f.a.age_edges(/*prune_retention=*/3);
  EXPECT_EQ(f.a.node_count(), 1u);  // pruned T + 3 + 1 steps after creation
}

TEST(HistoryTree, NegativeRetentionNeverPrunes) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  for (std::uint32_t i = 0; i < 10 * figure2_agents::T; ++i)
    f.a.age_edges(/*prune_retention=*/-1);
  EXPECT_EQ(f.a.node_count(), 2u);
}

TEST(HistoryTree, ToStringRendersPaths) {
  figure2_agents f;
  f.meet(f.a, f.b, 1);
  const std::string s = f.a.to_string();
  EXPECT_NE(s.find("00"), std::string::npos);
  EXPECT_NE(s.find("--1("), std::string::npos);
}

}  // namespace
}  // namespace ssr
