// Distribution equivalence of the simulation engines -- the central claim
// of pp/engine.hpp and pp/sharded_scheduler.hpp: the batched engine and the
// sharded engine simulate *exactly* the uniform scheduler's process, so
// stabilization times under --engine=direct, --engine=batched, and
// --engine=sharded (at any shard count) are draws from one distribution.
// Each sample is measured with an independent seed stream and compared
// against the direct engine's with the two-sample Kolmogorov-Smirnov test
// at alpha = 0.01 (analysis/ks_test.hpp) -- a distribution-level check, not
// a means comparison, so it catches subtle errors like mis-weighted pair
// categories, a biased geometric skip, or a sharded round plan whose
// multinomial class counts drift from Multinomial(T, w_c / n(n-1)), all of
// which leave averages intact.
//
// Coverage spans every engine path: Silent-n-state-SSR and
// Optimal-Silent-SSR are batch-countable (count engine with geometric
// null-skipping), Sublinear-Time-SSR exercises the deepest protocol
// machinery, and loose stabilizing LE is not batch-countable (collision-
// aware block sampling via batch_scheduler).  The sharded engine is walled
// at shards in {1, 2, 8}: 1 is the batched-delegate degenerate case, 2 the
// smallest real partition, 8 a partition with more shards than this test's
// populations have agents per shard is wide.  The loose protocol is
// additionally walled on its *leader-count* distribution at a fixed time
// horizon -- a configuration-shape observable, independent of the
// convergence-time one.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "analysis/ks_test.hpp"
#include "pp/convergence.hpp"
#include "pp/engine.hpp"
#include "pp/sharded_scheduler.hpp"
#include "pp/trial.hpp"
#include "protocols/adversary.hpp"
#include "protocols/loose_stabilizing.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/sublinear.hpp"

namespace {

using namespace ssr;

constexpr double kAlpha = 0.01;

// Non-convergence is reported as a sentinel instead of asserting inside the
// worker threads; the main thread checks the samples afterwards.
void expect_all_converged(const std::vector<double>& sample) {
  for (const double t : sample) ASSERT_GE(t, 0.0) << "a trial never converged";
}

// One wall brick: `other` must be indistinguishable from the direct
// engine's reference sample.
void expect_ks_equivalent(const std::vector<double>& reference,
                          const std::vector<double>& other,
                          const char* label) {
  const auto r = ks_two_sample(reference, other);
  EXPECT_GT(r.p_value, kAlpha)
      << label << ": KS statistic " << r.statistic << " (p = " << r.p_value
      << "); the engine's distribution diverged from the direct engine's";
}

std::vector<double> baseline_sample(engine_spec spec, std::uint64_t base,
                                    std::size_t trials) {
  const std::uint32_t n = 32;
  return run_trials(
      trials, base,
      [n, spec](std::uint64_t s, engine_kind) -> double {
        silent_n_state_ssr p(n);
        rng_t rng(s);
        auto init = adversarial_configuration(p, rng);
        const auto r =
            measure_convergence_with(spec, p, std::move(init), s ^ 0x5bd1e995);
        return r.converged ? r.convergence_time : -1.0;
      },
      {.parallel = true, .engine = spec});
}

std::vector<double> optimal_sample(engine_spec spec, std::uint64_t base,
                                   std::size_t trials) {
  const std::uint32_t n = 24;
  return run_trials(
      trials, base,
      [n, spec](std::uint64_t s, engine_kind) -> double {
        optimal_silent_ssr p(n);
        rng_t rng(s);
        auto init = adversarial_configuration(
            p, optimal_silent_scenario::uniform_random, rng);
        convergence_options opt;
        opt.max_parallel_time = 1e7;
        const auto r = measure_convergence_with(spec, p, std::move(init),
                                                s ^ 0x9747b28c, opt);
        return r.converged ? r.convergence_time : -1.0;
      },
      {.parallel = true, .engine = spec});
}

std::vector<double> sublinear_sample(engine_spec spec, std::uint64_t base,
                                     std::size_t trials) {
  const std::uint32_t n = 32;
  const std::uint32_t h = 2;
  return run_trials(
      trials, base,
      [=](std::uint64_t s, engine_kind) -> double {
        sublinear_time_ssr p(n, h);
        rng_t rng(s);
        auto init = adversarial_configuration(
            p, sublinear_scenario::uniform_random, rng);
        convergence_options opt;
        opt.max_parallel_time = 1e8;
        const auto r = measure_convergence_with(spec, p, std::move(init),
                                                s ^ 0x85ebca6b, opt);
        return r.converged ? r.convergence_time : -1.0;
      },
      {.parallel = true, .engine = spec});
}

// Drives the loose protocol on whichever engine `spec` selects; the loose
// protocol is not batch-countable, so the batched kind lands on the block-
// sampling path.
template <class Drive>
double drive_loose(engine_spec spec, const loose_stabilizing_le& p,
                   std::uint64_t s, Drive&& drive) {
  if (spec.kind == engine_kind::direct) {
    direct_engine<loose_stabilizing_le> eng(p, p.dead_configuration(), s);
    return drive(eng);
  }
  if (spec.kind == engine_kind::sharded) {
    sharded_engine<loose_stabilizing_le> eng(p, p.dead_configuration(), s,
                                             {.shards = spec.shards});
    return drive(eng);
  }
  batched_engine<loose_stabilizing_le> eng(p, p.dead_configuration(), s);
  return drive(eng);
}

std::vector<double> loose_sample(engine_spec spec, std::uint64_t base,
                                 std::size_t trials) {
  const std::uint32_t n = 32;
  const std::uint32_t t_max = 20;  // 4 log2 n
  return run_trials(
      trials, base,
      [=](std::uint64_t s, engine_kind) -> double {
        loose_stabilizing_le p(n, t_max);
        return drive_loose(spec, p, s, [&](auto& eng) -> double {
          const auto done = eng.run(
              std::uint64_t{200'000} * n, [](const agent_pair&) {},
              [&](const agent_pair&, bool changed) {
                return changed && p.leader_count(eng.agents()) == 1;
              });
          return done ? eng.parallel_time() : -1.0;
        });
      },
      {.parallel = true, .engine = spec});
}

// Leader count after a fixed horizon of 8n interactions from the dead
// configuration -- early enough that timeouts are still minting leaders, so
// the distribution is non-degenerate.  KS over a discrete observable is
// conservative (ties only lower the statistic), which is the safe direction
// for an equivalence wall.
std::vector<double> loose_leader_counts(engine_spec spec, std::uint64_t base,
                                        std::size_t trials) {
  const std::uint32_t n = 32;
  const std::uint32_t t_max = 20;
  return run_trials(
      trials, base,
      [=](std::uint64_t s, engine_kind) -> double {
        loose_stabilizing_le p(n, t_max);
        return drive_loose(spec, p, s, [&](auto& eng) -> double {
          eng.run(
              std::uint64_t{8} * n, [](const agent_pair&) {},
              [](const agent_pair&, bool) { return false; });
          return static_cast<double>(p.leader_count(eng.agents()));
        });
      },
      {.parallel = true, .engine = spec});
}

TEST(EngineEquivalence, SilentNStateStabilizationTimes) {
  const auto direct = baseline_sample(engine_kind::direct, 1101, 200);
  const auto batched = baseline_sample(engine_kind::batched, 2203, 200);
  const auto sharded1 =
      baseline_sample({engine_kind::sharded, 1}, 9203, 200);
  const auto sharded2 =
      baseline_sample({engine_kind::sharded, 2}, 9301, 200);
  const auto sharded8 =
      baseline_sample({engine_kind::sharded, 8}, 9407, 200);
  expect_all_converged(direct);
  expect_all_converged(batched);
  expect_all_converged(sharded1);
  expect_all_converged(sharded2);
  expect_all_converged(sharded8);
  expect_ks_equivalent(direct, batched, "batched");
  expect_ks_equivalent(direct, sharded1, "sharded shards=1");
  expect_ks_equivalent(direct, sharded2, "sharded shards=2");
  expect_ks_equivalent(direct, sharded8, "sharded shards=8");
  // Different shard counts against each other: the partition must not leak
  // into the law.
  expect_ks_equivalent(sharded2, sharded8, "sharded shards=2 vs shards=8");
}

TEST(EngineEquivalence, OptimalSilentStabilizationTimes) {
  const auto direct = optimal_sample(engine_kind::direct, 3307, 150);
  const auto batched = optimal_sample(engine_kind::batched, 4409, 150);
  const auto sharded2 =
      optimal_sample({engine_kind::sharded, 2}, 9511, 150);
  const auto sharded8 =
      optimal_sample({engine_kind::sharded, 8}, 9601, 150);
  expect_all_converged(direct);
  expect_all_converged(batched);
  expect_all_converged(sharded2);
  expect_all_converged(sharded8);
  expect_ks_equivalent(direct, batched, "batched");
  expect_ks_equivalent(direct, sharded2, "sharded shards=2");
  expect_ks_equivalent(direct, sharded8, "sharded shards=8");
}

TEST(EngineEquivalence, SublinearStabilizationTimes) {
  const auto direct = sublinear_sample(engine_kind::direct, 5113, 120);
  const auto batched = sublinear_sample(engine_kind::batched, 6217, 120);
  const auto sharded8 =
      sublinear_sample({engine_kind::sharded, 8}, 9719, 120);
  expect_all_converged(direct);
  expect_all_converged(batched);
  expect_all_converged(sharded8);
  expect_ks_equivalent(direct, batched, "batched");
  expect_ks_equivalent(direct, sharded8, "sharded shards=8");
}

TEST(EngineEquivalence, LooseLeaderElectionTimes) {
  const auto direct = loose_sample(engine_kind::direct, 5501, 150);
  const auto batched = loose_sample(engine_kind::batched, 6607, 150);
  const auto sharded8 = loose_sample({engine_kind::sharded, 8}, 9811, 150);
  expect_all_converged(direct);
  expect_all_converged(batched);
  expect_all_converged(sharded8);
  expect_ks_equivalent(direct, batched, "batched (block path)");
  expect_ks_equivalent(direct, sharded8, "sharded shards=8");
}

TEST(EngineEquivalence, LooseLeaderCountDistribution) {
  const auto direct =
      loose_leader_counts(engine_kind::direct, 7109, 200);
  const auto batched =
      loose_leader_counts(engine_kind::batched, 7211, 200);
  const auto sharded8 =
      loose_leader_counts({engine_kind::sharded, 8}, 9901, 200);
  // The horizon must land where the observable still varies, or the wall
  // would pass vacuously on a constant distribution.
  ASSERT_GT(std::set<double>(direct.begin(), direct.end()).size(), 1u);
  expect_ks_equivalent(direct, batched, "batched leader counts");
  expect_ks_equivalent(direct, sharded8, "sharded leader counts");
}

// A same-protocol direct-vs-direct comparison must of course also pass;
// this guards the harness itself (a bug that made the two samples dependent
// or degenerate could vacuously pass the tests above).
TEST(EngineEquivalence, HarnessSanityIndependentDirectSamples) {
  const auto a = baseline_sample(engine_kind::direct, 7701, 120);
  const auto b = baseline_sample(engine_kind::direct, 8803, 120);
  expect_all_converged(a);
  expect_all_converged(b);
  EXPECT_GT(ks_two_sample(a, b).p_value, kAlpha);
  // And the samples really are different draws, not copies.
  EXPECT_NE(a, b);
}

}  // namespace
