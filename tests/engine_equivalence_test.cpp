// Distribution equivalence of the simulation engines -- the central claim
// of pp/engine.hpp: the batched engine simulates *exactly* the uniform
// scheduler's process, so stabilization times under --engine=direct and
// --engine=batched are draws from one distribution.  Each protocol's two
// samples are measured with independent seed streams and compared with the
// two-sample Kolmogorov-Smirnov test at alpha = 0.01 (analysis/ks_test.hpp)
// -- a distribution-level check, not a means comparison, so it catches
// subtle errors like mis-weighted pair categories or a biased geometric
// skip that leave averages intact.
//
// Coverage spans both batched paths: Silent-n-state-SSR and
// Optimal-Silent-SSR are batch-countable (count engine with geometric
// null-skipping), loose stabilizing LE is not (collision-aware block
// sampling via batch_scheduler).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/ks_test.hpp"
#include "pp/convergence.hpp"
#include "pp/engine.hpp"
#include "pp/trial.hpp"
#include "protocols/adversary.hpp"
#include "protocols/loose_stabilizing.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"

namespace {

using namespace ssr;

constexpr double kAlpha = 0.01;

// Non-convergence is reported as a sentinel instead of asserting inside the
// worker threads; the main thread checks the samples afterwards.
void expect_all_converged(const std::vector<double>& sample) {
  for (const double t : sample) ASSERT_GE(t, 0.0) << "a trial never converged";
}

std::vector<double> baseline_sample(engine_kind kind, std::uint64_t base,
                                    std::size_t trials) {
  const std::uint32_t n = 32;
  return run_trials(
      trials, base,
      [n](std::uint64_t s, engine_kind k) -> double {
        silent_n_state_ssr p(n);
        rng_t rng(s);
        auto init = adversarial_configuration(p, rng);
        const auto r =
            measure_convergence_with(k, p, std::move(init), s ^ 0x5bd1e995);
        return r.converged ? r.convergence_time : -1.0;
      },
      {.parallel = true, .engine = kind});
}

std::vector<double> optimal_sample(engine_kind kind, std::uint64_t base,
                                   std::size_t trials) {
  const std::uint32_t n = 24;
  return run_trials(
      trials, base,
      [n](std::uint64_t s, engine_kind k) -> double {
        optimal_silent_ssr p(n);
        rng_t rng(s);
        auto init = adversarial_configuration(
            p, optimal_silent_scenario::uniform_random, rng);
        convergence_options opt;
        opt.max_parallel_time = 1e7;
        const auto r = measure_convergence_with(k, p, std::move(init),
                                                s ^ 0x9747b28c, opt);
        return r.converged ? r.convergence_time : -1.0;
      },
      {.parallel = true, .engine = kind});
}

std::vector<double> loose_sample(engine_kind kind, std::uint64_t base,
                                 std::size_t trials) {
  const std::uint32_t n = 32;
  const std::uint32_t t_max = 20;  // 4 log2 n
  return run_trials(
      trials, base,
      [=](std::uint64_t s, engine_kind k) -> double {
        loose_stabilizing_le p(n, t_max);
        const auto drive = [&](auto& eng) -> double {
          const auto done = eng.run(
              std::uint64_t{200'000} * n, [](const agent_pair&) {},
              [&](const agent_pair&, bool changed) {
                return changed && p.leader_count(eng.agents()) == 1;
              });
          return done ? eng.parallel_time() : -1.0;
        };
        if (k == engine_kind::direct) {
          direct_engine<loose_stabilizing_le> eng(p, p.dead_configuration(),
                                                  s);
          return drive(eng);
        }
        batched_engine<loose_stabilizing_le> eng(p, p.dead_configuration(),
                                                 s);
        return drive(eng);
      },
      {.parallel = true, .engine = kind});
}

TEST(EngineEquivalence, SilentNStateStabilizationTimes) {
  const auto direct = baseline_sample(engine_kind::direct, 1101, 200);
  const auto batched = baseline_sample(engine_kind::batched, 2203, 200);
  expect_all_converged(direct);
  expect_all_converged(batched);
  const auto r = ks_two_sample(direct, batched);
  EXPECT_GT(r.p_value, kAlpha)
      << "KS statistic " << r.statistic << ": the batched engine's "
      << "stabilization-time distribution diverged from the direct engine's";
}

TEST(EngineEquivalence, OptimalSilentStabilizationTimes) {
  const auto direct = optimal_sample(engine_kind::direct, 3307, 200);
  const auto batched = optimal_sample(engine_kind::batched, 4409, 200);
  expect_all_converged(direct);
  expect_all_converged(batched);
  const auto r = ks_two_sample(direct, batched);
  EXPECT_GT(r.p_value, kAlpha)
      << "KS statistic " << r.statistic << ": the batched engine's "
      << "stabilization-time distribution diverged from the direct engine's";
}

TEST(EngineEquivalence, LooseLeaderElectionBlockPath) {
  const auto direct = loose_sample(engine_kind::direct, 5501, 150);
  const auto batched = loose_sample(engine_kind::batched, 6607, 150);
  expect_all_converged(direct);
  expect_all_converged(batched);
  const auto r = ks_two_sample(direct, batched);
  EXPECT_GT(r.p_value, kAlpha)
      << "KS statistic " << r.statistic << ": the block-sampling path's "
      << "election-time distribution diverged from the direct engine's";
}

// A same-seed direct-vs-direct comparison must of course also pass; this
// guards the harness itself (a bug that made the two samples dependent or
// degenerate could vacuously pass the tests above).
TEST(EngineEquivalence, HarnessSanityIndependentDirectSamples) {
  const auto a = baseline_sample(engine_kind::direct, 7701, 120);
  const auto b = baseline_sample(engine_kind::direct, 8803, 120);
  expect_all_converged(a);
  expect_all_converged(b);
  EXPECT_GT(ks_two_sample(a, b).p_value, kAlpha);
  // And the samples really are different draws, not copies.
  EXPECT_NE(a, b);
}

}  // namespace
