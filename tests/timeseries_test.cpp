#include "analysis/timeseries.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ssr {
namespace {

TEST(TimeSeries, StoresColumns) {
  time_series ts({"a", "b"});
  ts.add(0.0, std::vector<double>{1.0, 2.0});
  ts.add(1.0, std::vector<double>{3.0, 4.0});
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.columns(), 2u);
  EXPECT_EQ(ts.column_name(1), "b");
  EXPECT_DOUBLE_EQ(ts.column(0)[1], 3.0);
  EXPECT_DOUBLE_EQ(ts.column(1)[0], 2.0);
}

TEST(TimeSeries, CsvFormat) {
  time_series ts({"settled"});
  ts.add(0.0, std::vector<double>{0.0});
  ts.add(2.5, std::vector<double>{12.0});
  const std::string csv = ts.to_csv();
  EXPECT_EQ(csv, "time,settled\n0,0\n2.5,12\n");
}

TEST(TimeSeries, RejectsWrongArityAndBackwardsTime) {
  time_series ts({"a"});
  EXPECT_THROW(ts.add(0.0, std::vector<double>{1.0, 2.0}), std::logic_error);
  ts.add(5.0, std::vector<double>{1.0});
  EXPECT_THROW(ts.add(4.0, std::vector<double>{1.0}), std::logic_error);
}

TEST(TimeSeries, AsciiChartHasRequestedGeometry) {
  time_series ts({"x"});
  for (int i = 0; i <= 100; ++i)
    ts.add(i, std::vector<double>{static_cast<double>(i % 10)});
  const std::string chart = ts.ascii_chart(0, 40, 8);
  // Header + 8 rows + time footer.
  int lines = 0;
  for (const char c : chart) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 10);
  EXPECT_NE(chart.find("x (min 0"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(TimeSeries, AsciiChartMonotoneSeriesFillsCorners) {
  time_series ts({"ramp"});
  for (int i = 0; i <= 63; ++i)
    ts.add(i, std::vector<double>{static_cast<double>(i)});
  const std::string chart = ts.ascii_chart(0, 64, 6);
  // The first data row (max level) must contain a '*' near the right edge,
  // the last (min level) near the left edge.
  std::vector<std::string> lines;
  std::istringstream is(chart);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  ASSERT_GE(lines.size(), 8u);
  EXPECT_NE(lines[1].rfind('*'), std::string::npos);
  EXPECT_LT(lines[6].find('*'), 4u);   // bottom row starts at the left
  EXPECT_GT(lines[1].rfind('*'), 60u);  // top row ends at the right
}

TEST(TimeSeries, EmptyChartDoesNotCrash) {
  time_series ts({"x"});
  EXPECT_EQ(ts.ascii_chart(0), "(empty series)\n");
}

}  // namespace
}  // namespace ssr
