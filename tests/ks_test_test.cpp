#include "analysis/ks_test.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "pp/random.hpp"

namespace ssr {
namespace {

TEST(KsTest, IdenticalSamplesHaveZeroStatistic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const auto r = ks_two_sample(xs, xs);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_GT(r.p_value, 0.99);
}

TEST(KsTest, DisjointSamplesHaveStatisticOne) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 11.0, 12.0};
  const auto r = ks_two_sample(a, b);
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
  EXPECT_LT(r.p_value, 0.1);
}

TEST(KsTest, SameDistributionUsuallyAccepted) {
  rng_t rng(5);
  int rejections = 0;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> a(200), b(200);
    for (auto& x : a) x = uniform_unit(rng);
    for (auto& x : b) x = uniform_unit(rng);
    if (ks_two_sample(a, b).p_value < 0.01) ++rejections;
  }
  // At alpha = 1%, expect ~0.4 false rejections over 40 runs.
  EXPECT_LE(rejections, 3);
}

TEST(KsTest, ShiftedDistributionRejected) {
  rng_t rng(7);
  std::vector<double> a(500), b(500);
  for (auto& x : a) x = uniform_unit(rng);
  for (auto& x : b) x = uniform_unit(rng) + 0.3;
  const auto r = ks_two_sample(a, b);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, ScaledVarianceRejected) {
  // Same mean, different spread: a mean-based test would miss this; KS must
  // not.
  rng_t rng(9);
  std::vector<double> a(800), b(800);
  for (auto& x : a) x = uniform_unit(rng);            // U(0, 1)
  for (auto& x : b) x = 0.5 + (uniform_unit(rng) - 0.5) * 0.2;  // U(0.4, 0.6)
  const auto r = ks_two_sample(a, b);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(KsTest, RejectsEmptySamples) {
  const std::vector<double> xs{1.0};
  const std::vector<double> empty;
  EXPECT_THROW(ks_two_sample(xs, empty), std::logic_error);
}

}  // namespace
}  // namespace ssr
