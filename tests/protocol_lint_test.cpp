// Tests for the protocol model linter (analysis/protocol_lint/).
//
// Two halves: every shipped protocol must pass the strict lint at small n
// (the correctness wall), and every deliberately broken fixture must fail
// with exactly the finding code its defect was built to trigger (the wall
// actually fires).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/protocol_lint/lint.hpp"

namespace ssr::lint {
namespace {

lint_report lint_one(const std::string& name,
                     std::vector<std::uint32_t> sizes = {2, 3, 4}) {
  lint_options options;
  options.protocols = {name};
  options.n_values = std::move(sizes);
  return run_lint(options);
}

bool has_error_with(const lint_report& report, finding_code code) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [&](const finding& f) {
                       return f.code == code && f.sev == severity::error;
                     });
}

TEST(ProtocolLintRegistry, ShipsTheNineVisibleProtocols) {
  const std::vector<std::string> visible =
      registry_names(/*include_hidden=*/false);
  const std::vector<std::string> expected = {
      "baseline",     "optimal",        "optimal-default",
      "sublinear-h0", "sublinear-h1",   "sublinear-h2",
      "loose",        "initialized-le", "initialized-ranking"};
  EXPECT_EQ(visible, expected);
}

TEST(ProtocolLintRegistry, HiddenFixturesAreListedOnlyOnRequest) {
  const std::vector<std::string> all = registry_names(/*include_hidden=*/true);
  const std::vector<std::string> visible =
      registry_names(/*include_hidden=*/false);
  EXPECT_GT(all.size(), visible.size());
  for (const std::string& name : all) {
    const protocol_entry* entry = find_protocol(name);
    ASSERT_NE(entry, nullptr) << name;
    const bool listed_visible =
        std::find(visible.begin(), visible.end(), name) != visible.end();
    EXPECT_EQ(entry->hidden, !listed_visible) << name;
  }
}

TEST(ProtocolLintRegistry, FindProtocolReturnsNullOnUnknown) {
  EXPECT_EQ(find_protocol("no-such-protocol"), nullptr);
  EXPECT_NE(find_protocol("baseline"), nullptr);
}

// The correctness wall: every registered protocol passes the strict lint at
// n in {2,3,4}.  This is the same gate CI runs via `protocol_lint --strict`.
TEST(ProtocolLintWall, EveryVisibleProtocolPassesStrict) {
  const lint_report report = run_lint(lint_options{});
  for (const finding& f : report.findings) {
    EXPECT_NE(f.sev, severity::error) << to_line(f);
    EXPECT_NE(f.sev, severity::warning) << to_line(f);
  }
  EXPECT_TRUE(report.passed(/*strict=*/true));
  EXPECT_EQ(report.protocols.size(), 9u);
}

TEST(ProtocolLintWall, DefaultRunExcludesTheBrokenFixtures) {
  const lint_report report = run_lint(lint_options{});
  for (const std::string& name : report.protocols) {
    EXPECT_EQ(name.rfind("broken-", 0), std::string::npos) << name;
  }
}

TEST(ProtocolLintWall, IncludeHiddenPullsInTheFixturesAndFails) {
  lint_options options;
  options.include_hidden = true;
  const lint_report report = run_lint(options);
  EXPECT_GT(report.protocols.size(), 9u);
  EXPECT_FALSE(report.passed(/*strict=*/false));
}

// Each fixture protocol was built around one defect; the lint must attribute
// it to the matching finding code (and fail the run).
struct fixture_case {
  const char* name;
  finding_code expected;
};

class ProtocolLintFixture : public ::testing::TestWithParam<fixture_case> {};

TEST_P(ProtocolLintFixture, FailsWithItsDefectCode) {
  const fixture_case& c = GetParam();
  const lint_report report = lint_one(c.name);
  EXPECT_FALSE(report.passed(/*strict=*/false)) << c.name;
  EXPECT_TRUE(has_error_with(report, c.expected))
      << c.name << " should trip " << code_id(c.expected) << ' '
      << to_string(c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllFixtures, ProtocolLintFixture,
    ::testing::Values(
        fixture_case{"broken-closure", finding_code::closure_escape},
        fixture_case{"broken-silence", finding_code::non_silent_terminal},
        fixture_case{"broken-rank", finding_code::ranking_not_permutation},
        fixture_case{"broken-rank-range", finding_code::rank_out_of_range},
        fixture_case{"broken-change-flag", finding_code::change_flag_mismatch},
        fixture_case{"broken-batch",
                     finding_code::batch_partition_violation},
        fixture_case{"broken-hot-class", finding_code::exhaustive_silence},
        fixture_case{"broken-regressing-rank",
                     finding_code::exhaustive_stabilization},
        fixture_case{"broken-time-budget",
                     finding_code::expected_time_budget}),
    [](const ::testing::TestParamInfo<fixture_case>& param) {
      std::string name = param.param.name;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// The incorrect-terminal fixture also proves L009: a duplicated-rank
// terminal configuration is by definition not a correct ranking.
TEST(ProtocolLintFixtures, DuplicateRankAlsoBreaksSelfStabilization) {
  const lint_report report = lint_one("broken-rank");
  EXPECT_TRUE(has_error_with(report, finding_code::not_self_stabilizing));
}

TEST(ProtocolLint, UnknownProtocolThrowsWithSuggestion) {
  try {
    lint_one("basline");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("basline"), std::string::npos);
    EXPECT_NE(what.find("did you mean 'baseline'"), std::string::npos);
  }
}

TEST(ProtocolLintFinding, CodeNamesRoundTrip) {
  for (std::size_t i = 0; i < finding_code_count; ++i) {
    const auto code = static_cast<finding_code>(i);
    EXPECT_EQ(parse_finding_code(to_string(code)), code);
    const std::string id{code_id(code)};
    ASSERT_EQ(id.size(), 4u);
    EXPECT_EQ(id[0], 'L');
  }
  EXPECT_THROW(parse_finding_code("no-such-code"), std::invalid_argument);
}

TEST(ProtocolLintFinding, LineFormatIsStable) {
  finding f;
  f.code = finding_code::closure_escape;
  f.sev = severity::error;
  f.protocol = "baseline";
  f.n = 3;
  f.message = "boom";
  EXPECT_EQ(to_line(f), "error[L001 closure-escape] baseline n=3: boom");
}

// The spurious-terminal-class fixture is a note-only defect: it must fail
// nothing, but the model pass has to surface the isolated class.
TEST(ProtocolLintFixtures, IsolatedClassSurfacesAsANote) {
  const lint_report report = lint_one("broken-isolated-class", {2});
  EXPECT_TRUE(report.passed(/*strict=*/true));
  EXPECT_TRUE(std::any_of(
      report.findings.begin(), report.findings.end(), [](const finding& f) {
        return f.code == finding_code::spurious_terminal_class &&
               f.sev == severity::note;
      }));
}

TEST(ProtocolLintReport, JsonSummaryMatchesCounts) {
  const lint_report report = lint_one("broken-closure", {2});
  const obs::json_value doc = to_json(report, /*strict=*/true);
  const std::string text = doc.dump(2);
  EXPECT_NE(text.find("\"schema\": \"ssr.lint\""), std::string::npos);
  EXPECT_NE(text.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"tool\""), std::string::npos);
  EXPECT_NE(text.find("protocol_lint"), std::string::npos);
  EXPECT_NE(text.find("closure-escape"), std::string::npos);
  EXPECT_NE(text.find("\"passed\""), std::string::npos);
  EXPECT_GT(report.errors, 0u);
  EXPECT_EQ(report.violations(/*strict=*/false), report.errors);
  EXPECT_EQ(report.violations(/*strict=*/true),
            report.errors + report.warnings);
}

TEST(ProtocolLintReport, RenderedReportCarriesTheVerdict) {
  const lint_report good = lint_one("baseline", {2, 3});
  EXPECT_NE(render_report(good, true).find("PASS"), std::string::npos);
  const lint_report bad = lint_one("broken-silence", {2});
  const std::string rendered = render_report(bad, true);
  EXPECT_NE(rendered.find("FAIL"), std::string::npos);
  EXPECT_NE(rendered.find("L008"), std::string::npos);
}

// Notes (the dead-state audit) never gate, even under --strict.
TEST(ProtocolLintReport, NotesAreNeverViolations) {
  const lint_report report = lint_one("loose");
  EXPECT_GT(report.notes, 0u);  // leaf states only deserialization reaches
  EXPECT_TRUE(report.passed(/*strict=*/true));
}

}  // namespace
}  // namespace ssr::lint
