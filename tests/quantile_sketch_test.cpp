#include "obs/quantile_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "analysis/statistics.hpp"

namespace ssr::obs {
namespace {

/// Acceptance gate (ISSUE 3): p50/p90/p99 within 2% relative error of the
/// exact sample quantiles on 1e6-sample reference distributions.
constexpr double relative_tolerance = 0.02;
constexpr std::size_t reference_samples = 1'000'000;

void expect_quantiles_close(const quantile_sketch& sketch,
                            std::vector<double> exact_source,
                            const char* label) {
  std::sort(exact_source.begin(), exact_source.end());
  for (const double q : {0.50, 0.90, 0.99}) {
    const double exact = quantile(exact_source, q);
    const double estimated = sketch.quantile(q);
    const double scale = std::max(std::abs(exact), 1e-12);
    EXPECT_NEAR(estimated, exact, relative_tolerance * scale)
        << label << " q=" << q;
  }
}

template <class Distribution>
void run_reference(Distribution dist, std::uint64_t seed,
                   const char* label) {
  std::mt19937_64 rng(seed);
  quantile_sketch sketch;
  std::vector<double> samples;
  samples.reserve(reference_samples);
  for (std::size_t i = 0; i < reference_samples; ++i) {
    const double x = dist(rng);
    sketch.add(x);
    samples.push_back(x);
  }
  EXPECT_EQ(sketch.count(), reference_samples);
  expect_quantiles_close(sketch, std::move(samples), label);
}

TEST(QuantileSketch, UniformReference) {
  run_reference(std::uniform_real_distribution<double>(0.0, 100.0), 11,
                "uniform");
}

TEST(QuantileSketch, ExponentialReference) {
  // Heavy right tail: the regime the paper's WHP columns (upper quantiles
  // of stabilization time) live in.
  run_reference(std::exponential_distribution<double>(1.0 / 50.0), 12,
                "exponential");
}

TEST(QuantileSketch, LognormalReference) {
  run_reference(std::lognormal_distribution<double>(3.0, 0.8), 13,
                "lognormal");
}

TEST(QuantileSketch, BoundedMemory) {
  std::mt19937_64 rng(7);
  std::exponential_distribution<double> dist(1.0);
  quantile_sketch sketch;
  for (std::size_t i = 0; i < 200'000; ++i) sketch.add(dist(rng));
  // ~2x compression centroids regardless of stream length.
  EXPECT_LE(sketch.centroid_count(), 500u);
}

TEST(QuantileSketch, EmptyAndSingleton) {
  quantile_sketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.quantile(0.5), 0.0);
  sketch.add(42.0);
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(sketch.quantile(1.0), 42.0);
}

TEST(QuantileSketch, IgnoresNonFiniteSamples) {
  quantile_sketch sketch;
  sketch.add(std::numeric_limits<double>::quiet_NaN());
  sketch.add(std::numeric_limits<double>::infinity());
  sketch.add(1.0);
  EXPECT_EQ(sketch.count(), 1u);
  EXPECT_DOUBLE_EQ(sketch.quantile(0.5), 1.0);
}

TEST(QuantileSketch, MergeMatchesConcatenatedStream) {
  std::mt19937_64 rng(21);
  std::normal_distribution<double> left(100.0, 10.0);
  std::exponential_distribution<double> right(1.0 / 30.0);

  quantile_sketch a, b, whole;
  std::vector<double> samples;
  for (std::size_t i = 0; i < 100'000; ++i) {
    const double x = left(rng);
    a.add(x);
    whole.add(x);
    samples.push_back(x);
  }
  for (std::size_t i = 0; i < 100'000; ++i) {
    const double x = right(rng);
    b.add(x);
    whole.add(x);
    samples.push_back(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), samples.size());
  // The merged digest and the single-stream digest agree with the exact
  // quantiles of the concatenation within the same tolerance.
  expect_quantiles_close(a, samples, "merged");
  expect_quantiles_close(whole, std::move(samples), "single-stream");
}

TEST(QuantileSketch, MergeFromEmptyAndIntoEmpty) {
  quantile_sketch empty, filled;
  for (int i = 1; i <= 100; ++i) filled.add(i);
  quantile_sketch target;
  target.merge(filled);
  EXPECT_EQ(target.count(), 100u);
  EXPECT_NEAR(target.quantile(0.5), 50.5, 2.0);
  target.merge(empty);
  EXPECT_EQ(target.count(), 100u);
}

TEST(QuantileSketch, SelfMergeDoublesWeight) {
  quantile_sketch sketch;
  for (int i = 1; i <= 1000; ++i) sketch.add(i);
  const double median_before = sketch.quantile(0.5);
  sketch.merge(sketch);
  EXPECT_EQ(sketch.count(), 2000u);
  EXPECT_NEAR(sketch.quantile(0.5), median_before, 5.0);
}

TEST(QuantileSketch, MonotoneInQ) {
  std::mt19937_64 rng(5);
  std::lognormal_distribution<double> dist(0.0, 1.0);
  quantile_sketch sketch;
  for (std::size_t i = 0; i < 50'000; ++i) sketch.add(dist(rng));
  double last = sketch.quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double value = sketch.quantile(q);
    EXPECT_GE(value, last) << "q=" << q;
    last = value;
  }
}

}  // namespace
}  // namespace ssr::obs
