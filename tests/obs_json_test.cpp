#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace ssr::obs {
namespace {

TEST(ObsJson, ScalarsRoundTrip) {
  for (const char* text :
       {"null", "true", "false", "0", "-1", "3.5", "1e100", "\"hi\"",
        "\"\"", "[]", "{}", "[1,2,3]", "{\"a\":1,\"b\":[true,null]}"}) {
    std::string error;
    const auto v = json_value::parse(text, &error);
    ASSERT_TRUE(v.has_value()) << text << ": " << error;
    const auto again = json_value::parse(v->dump(), &error);
    ASSERT_TRUE(again.has_value()) << v->dump() << ": " << error;
    EXPECT_TRUE(*v == *again) << text;
  }
}

TEST(ObsJson, IntegersPrintWithoutDecimalPoint) {
  EXPECT_EQ(json_value(std::uint64_t{42}).dump(), "42");
  EXPECT_EQ(json_value(-7).dump(), "-7");
  EXPECT_EQ(json_value(0.0).dump(), "0");
  // 2^53 is the last exactly-representable integer; beyond it doubles print
  // in scientific/extended form but still round-trip.
  const double big = std::ldexp(1.0, 53);
  const auto v = json_value::parse(json_value(big).dump());
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->as_double(), big);
}

TEST(ObsJson, DoubleRoundTripsAtFullPrecision) {
  for (const double d : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324,
                         std::numeric_limits<double>::max()}) {
    const auto v = json_value::parse(json_value(d).dump());
    ASSERT_TRUE(v.has_value()) << d;
    EXPECT_EQ(v->as_double(), d);
  }
}

TEST(ObsJson, StringEscaping) {
  const std::string raw = "quote\" backslash\\ newline\n tab\t bell\x07 nul";
  const std::string dumped = json_value(raw).dump();
  EXPECT_NE(dumped.find("\\\""), std::string::npos);
  EXPECT_NE(dumped.find("\\\\"), std::string::npos);
  EXPECT_NE(dumped.find("\\n"), std::string::npos);
  EXPECT_NE(dumped.find("\\t"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0007"), std::string::npos);
  const auto v = json_value::parse(dumped);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), raw);
}

TEST(ObsJson, UnicodeEscapesAndSurrogatePairs) {
  // \u00e9 = é (2-byte UTF-8), \ud83d\ude00 = U+1F600 (4-byte UTF-8).
  const auto v = json_value::parse("\"caf\\u00e9 \\ud83d\\ude00\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "caf\xc3\xa9 \xf0\x9f\x98\x80");
  // Re-dumping emits valid JSON that parses back to the same bytes.
  const auto again = json_value::parse(v->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->as_string(), v->as_string());
}

TEST(ObsJson, LoneSurrogateRejected) {
  std::string error;
  EXPECT_FALSE(json_value::parse("\"\\ud83d\"", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ObsJson, MalformedDocumentsRejected) {
  for (const char* text :
       {"", "{", "[1,", "tru", "01", "1.", "+1", "\"unterminated", "[1 2]",
        "{\"a\" 1}", "{\"a\":1,}", "[],[]", "nan", "infinity", "'single'"}) {
    std::string error;
    EXPECT_FALSE(json_value::parse(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(ObsJson, TrailingContentRejected) {
  EXPECT_FALSE(json_value::parse("{} garbage").has_value());
  EXPECT_TRUE(json_value::parse("  {}  ").has_value());
}

TEST(ObsJson, ObjectsPreserveInsertionOrder) {
  json_value obj = json_value::object();
  obj["zebra"] = 1;
  obj["apple"] = 2;
  obj["zebra"] = 3;  // overwrite keeps the original slot
  EXPECT_EQ(obj.dump(), "{\"zebra\":3,\"apple\":2}");
  EXPECT_EQ(obj.members().size(), 2u);
}

TEST(ObsJson, EqualityIgnoresObjectOrder) {
  const auto a = json_value::parse("{\"x\":1,\"y\":[2,3]}");
  const auto b = json_value::parse("{\"y\":[2,3],\"x\":1}");
  const auto c = json_value::parse("{\"x\":1,\"y\":[3,2]}");
  ASSERT_TRUE(a && b && c);
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
}

TEST(ObsJson, FindAndAccessors) {
  const auto v = json_value::parse("{\"n\":64,\"ok\":true,\"s\":\"x\"}");
  ASSERT_TRUE(v.has_value());
  ASSERT_NE(v->find("n"), nullptr);
  EXPECT_EQ(v->find("n")->as_uint64(), 64u);
  EXPECT_TRUE(v->find("ok")->as_bool());
  EXPECT_EQ(v->find("s")->as_string(), "x");
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(ObsJson, PrettyPrintParsesBack) {
  const auto v =
      json_value::parse("{\"rows\":[{\"a\":1},{\"b\":[1,2]}],\"m\":{}}");
  ASSERT_TRUE(v.has_value());
  const std::string pretty = v->dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  const auto again = json_value::parse(pretty);
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(*v == *again);
}

TEST(ObsJson, DeepNestingRejectedNotCrashing) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  std::string error;
  EXPECT_FALSE(json_value::parse(deep, &error).has_value());
}

}  // namespace
}  // namespace ssr::obs
