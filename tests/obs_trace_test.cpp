#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "pp/engine.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/sublinear.hpp"

namespace ssr::obs {
namespace {

static_assert(phase_instrumented_protocol<optimal_silent_ssr>);
static_assert(phase_instrumented_protocol<sublinear_time_ssr>);

TEST(ObsTrace, SamplingKeepsStructuralEvents) {
  trace_sink sink({.sample_every = 10, .max_events = 1000});
  for (int i = 0; i < 100; ++i)
    sink.emit({trace_event_kind::phase_transition, 0.0, 0, 1, 0, 1});
  sink.emit({trace_event_kind::reset_wave_start, 1.0, 5});
  sink.emit({trace_event_kind::convergence, 2.0, 9});
  EXPECT_EQ(sink.offered(), 102u);
  EXPECT_EQ(sink.sampled_out(), 90u);
  // 10 sampled transitions + both structural events survive.
  EXPECT_EQ(sink.events().size(), 12u);
}

TEST(ObsTrace, BufferCapCountsDrops) {
  trace_sink sink({.sample_every = 1, .max_events = 4});
  for (int i = 0; i < 10; ++i)
    sink.emit({trace_event_kind::phase_transition, 0.0, 0, 1, 0, 1});
  EXPECT_EQ(sink.events().size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
}

TEST(ObsTrace, JsonlHasHeaderAndOneObjectPerEvent) {
  trace_sink sink;
  sink.emit({trace_event_kind::run_start, 0.0, 0});
  sink.emit({trace_event_kind::phase_transition, 1.5, 96, 3, 0, 1});
  sink.emit({trace_event_kind::run_end, 2.0, 128});
  const std::vector<std::string_view> names{"settled", "unsettled"};
  std::ostringstream os;
  sink.write_jsonl(os, names);
  std::istringstream is(os.str());
  std::string line;
  std::vector<json_value> lines;
  while (std::getline(is, line)) {
    auto v = json_value::parse(line);
    ASSERT_TRUE(v.has_value()) << line;
    lines.push_back(std::move(*v));
  }
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0].find("event")->as_string(), "trace_header");
  EXPECT_EQ(lines[0].find("schema")->as_string(), "ssr.trace");
  EXPECT_EQ(lines[0].find("schema_version")->as_int64(), 2);
  // v2 stamps the producing revision so offline consumers can join traces
  // to bench history; "unknown" outside a git checkout, never absent.
  ASSERT_NE(lines[0].find("git_rev"), nullptr);
  EXPECT_FALSE(lines[0].find("git_rev")->as_string().empty());
  EXPECT_EQ(lines[1].find("event")->as_string(), "run_start");
  EXPECT_EQ(lines[2].find("event")->as_string(), "phase_transition");
  EXPECT_EQ(lines[2].find("from")->as_string(), "settled");
  EXPECT_EQ(lines[2].find("to")->as_string(), "unsettled");
  EXPECT_EQ(lines[2].find("agent")->as_uint64(), 3u);
  EXPECT_EQ(lines[3].find("event")->as_string(), "run_end");
}

/// Drives Optimal-Silent-SSR from the duplicated_ranks start through an engine
/// with a phase observer attached and checks the stream invariants: the
/// occupancy always sums to n, reset waves come in start/end pairs, and the
/// final occupancy matches a direct scan of the final configuration.
template <class Engine>
void run_observed(std::uint32_t n, std::uint64_t seed, trace_sink& sink) {
  optimal_silent_ssr p(n);
  rng_t rng(seed);
  // duplicated_ranks: the collision is detected within O(n) time (the two
  // duplicates meet), so a 400n-interaction budget reliably produces phase
  // transitions and a reset wave.
  auto init = adversarial_configuration(
      p, optimal_silent_scenario::duplicated_ranks, rng);
  Engine eng(p, std::move(init), seed ^ 0x1234);
  phase_observer<optimal_silent_ssr> observer(p, eng.agents(), &sink);

  std::uint64_t total0 = 0;
  for (const std::uint64_t c : observer.occupancy()) total0 += c;
  ASSERT_EQ(total0, n);

  observer.begin(eng.parallel_time(), eng.interactions());
  eng.run(std::uint64_t{400} * n,
          [&](const agent_pair& pair) { observer.before(pair); },
          [&](const agent_pair& pair, bool changed) {
            observer.after(pair, changed, eng.parallel_time(),
                           eng.interactions());
            return false;
          });
  observer.end(eng.parallel_time(), eng.interactions());

  // Incremental occupancy == full recount of the final configuration.
  std::vector<std::uint64_t> recount(p.obs_phase_count(), 0);
  for (const auto& s : eng.agents()) ++recount[p.obs_phase(s)];
  for (std::uint32_t ph = 0; ph < recount.size(); ++ph)
    EXPECT_EQ(observer.occupancy()[ph], recount[ph]) << "phase " << ph;
}

TEST(ObsTrace, PhaseObserverTracksOccupancyIncrementally) {
  trace_sink sink;
  run_observed<direct_engine<optimal_silent_ssr>>(48, 21, sink);

  int wave_depth = 0;
  std::uint64_t last_interaction = 0;
  bool saw_transition = false;
  for (const trace_event& e : sink.events()) {
    EXPECT_GE(e.interaction, last_interaction);
    last_interaction = e.interaction;
    switch (e.kind) {
      case trace_event_kind::reset_wave_start:
        EXPECT_EQ(wave_depth, 0);
        ++wave_depth;
        break;
      case trace_event_kind::reset_wave_end:
        EXPECT_EQ(wave_depth, 1);
        --wave_depth;
        break;
      case trace_event_kind::phase_transition:
        saw_transition = true;
        EXPECT_NE(e.from_phase, e.to_phase);
        EXPECT_NE(e.agent, trace_no_agent);
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_transition);
  EXPECT_EQ(sink.events().front().kind, trace_event_kind::run_start);
  EXPECT_EQ(sink.events().back().kind, trace_event_kind::run_end);
}

// Both engines surface exactly the executed interactions to the hooks, so
// they emit the same event vocabulary with the same invariants; with
// identical executed trajectories the streams coincide, but equal seeds do
// not promise that across engine kinds -- only validity does.
TEST(ObsTrace, BatchedEngineEmitsSameStreamShape) {
  trace_sink sink;
  run_observed<batched_engine<optimal_silent_ssr>>(48, 21, sink);
  ASSERT_GE(sink.events().size(), 2u);
  EXPECT_EQ(sink.events().front().kind, trace_event_kind::run_start);
  EXPECT_EQ(sink.events().back().kind, trace_event_kind::run_end);
  bool saw_transition = false;
  for (const trace_event& e : sink.events())
    saw_transition |= e.kind == trace_event_kind::phase_transition;
  EXPECT_TRUE(saw_transition);
}

// Accounting at the cap boundary: every offered event is either emitted,
// sampled out, or dropped -- exactly, with no double counting when the
// buffer fills mid-stream.
TEST(ObsTrace, OfferedSplitsExactlyIntoEmittedSampledDropped) {
  trace_sink sink({.sample_every = 3, .max_events = 8});
  for (int i = 0; i < 100; ++i)
    sink.emit({trace_event_kind::phase_transition, double(i), std::uint64_t(i),
               1, 0, 1});
  EXPECT_EQ(sink.offered(), 100u);
  EXPECT_EQ(sink.events().size(), 8u);  // cap reached, never exceeded
  EXPECT_EQ(sink.offered(),
            sink.events().size() + sink.sampled_out() + sink.dropped());
  // Sampling is applied before the cap: 33 of 100 transitions survive
  // sampling (offered index divisible by 3), the first 8 fit, the rest drop.
  EXPECT_EQ(sink.sampled_out(), 67u);
  EXPECT_EQ(sink.dropped(), 25u);

  // Exactly at the cap: one more slot, one more event, zero drops.
  trace_sink exact({.sample_every = 1, .max_events = 5});
  for (int i = 0; i < 5; ++i)
    exact.emit({trace_event_kind::phase_transition, 0.0, 0, 1, 0, 1});
  EXPECT_EQ(exact.events().size(), 5u);
  EXPECT_EQ(exact.dropped(), 0u);
  exact.emit({trace_event_kind::phase_transition, 0.0, 0, 1, 0, 1});
  EXPECT_EQ(exact.events().size(), 5u);
  EXPECT_EQ(exact.dropped(), 1u);
}

// Aggressive sampling must never sample out the run framing or any other
// structural event: a downstream trace_stats pass relies on run_start /
// run_end pairs to delimit runs.
TEST(ObsTrace, SamplingNeverDropsRunFraming) {
  trace_sink sink({.sample_every = 1000, .max_events = 1u << 20});
  sink.emit({trace_event_kind::run_start, 0.0, 0});
  for (int i = 0; i < 500; ++i)
    sink.emit({trace_event_kind::phase_transition, double(i),
               std::uint64_t(i), 2, 0, 1});
  sink.emit({trace_event_kind::reset_wave_start, 500.0, 500});
  sink.emit({trace_event_kind::reset_wave_end, 501.0, 501});
  sink.emit({trace_event_kind::run_end, 502.0, 502});
  ASSERT_FALSE(sink.events().empty());
  EXPECT_EQ(sink.events().front().kind, trace_event_kind::run_start);
  EXPECT_EQ(sink.events().back().kind, trace_event_kind::run_end);
  std::uint64_t structural = 0;
  for (const trace_event& e : sink.events())
    if (e.kind != trace_event_kind::phase_transition) ++structural;
  EXPECT_EQ(structural, 4u);  // start, wave pair, end -- all retained
  EXPECT_EQ(sink.sampled_out(), 500u);  // every transition sampled out
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.offered(),
            sink.events().size() + sink.sampled_out() + sink.dropped());
}

TEST(ObsTrace, PhaseNamesMatchProtocolHooks) {
  const optimal_silent_ssr p(8);
  trace_sink sink;
  phase_observer<optimal_silent_ssr> observer(
      p, std::span<const optimal_silent_ssr::agent_state>{}, &sink);
  const auto names = observer.phase_names();
  ASSERT_EQ(names.size(), p.obs_phase_count());
  for (std::uint32_t ph = 0; ph < names.size(); ++ph)
    EXPECT_EQ(names[ph], optimal_silent_ssr::obs_phase_name(ph));
}

}  // namespace
}  // namespace ssr::obs
