#include "pp/trial.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "pp/rng.hpp"

namespace ssr {
namespace {

TEST(ParallelForIndex, VisitsEveryIndexOnce) {
  constexpr std::size_t count = 1000;
  std::vector<std::atomic<int>> visits(count);
  parallel_for_index(count, [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < count; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForIndex, SequentialModeWorks) {
  std::vector<int> order;
  parallel_for_index(
      5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
      /*parallel=*/false);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForIndex, PropagatesExceptions) {
  EXPECT_THROW(parallel_for_index(100,
                                  [](std::size_t i) {
                                    if (i == 37)
                                      throw std::runtime_error("boom");
                                  }),
               std::runtime_error);
}

TEST(ParallelForIndex, ZeroCountIsNoOp) {
  parallel_for_index(0, [](std::size_t) { FAIL(); });
}

TEST(RunTrials, ResultsAreOrderedAndSeedDerived) {
  const auto results = run_trials(
      16, 7, [](std::uint64_t seed) { return static_cast<double>(seed % 97); });
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(results[i],
                     static_cast<double>(derive_seed(7, i) % 97));
  }
}

TEST(RunTrials, ParallelAndSequentialAgree) {
  const auto trial = [](std::uint64_t seed) {
    return static_cast<double>(seed & 0xffff);
  };
  const auto par = run_trials(64, 3, trial, /*parallel=*/true);
  const auto seq = run_trials(64, 3, trial, /*parallel=*/false);
  EXPECT_EQ(par, seq);
}

}  // namespace
}  // namespace ssr
