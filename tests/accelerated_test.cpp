#include "pp/accelerated.hpp"

#include <gtest/gtest.h>

#include "analysis/ks_test.hpp"
#include "pp/convergence.hpp"
#include "pp/trial.hpp"
#include "protocols/adversary.hpp"
#include "protocols/initialized.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"

namespace ssr {
namespace {

optimal_silent_ssr::tuning small_tuning(std::uint32_t n) {
  optimal_silent_ssr::tuning t;
  t.e_max = 4 * n;
  t.r_max = 8;
  t.d_max = 2 * n;
  return t;
}

TEST(AcceleratedSimulation, BaselineMatchesDirectDistribution) {
  const std::uint32_t n = 10;
  silent_n_state_ssr p(n);
  std::vector<silent_n_state_ssr::agent_state> init(n);  // all rank 0

  const auto direct = run_trials(300, 91000, [&](std::uint64_t seed) {
    return measure_convergence(p, init, seed).convergence_time;
  });
  const auto fast = run_trials(300, 92000, [&](std::uint64_t seed) {
    accelerated_simulation<silent_n_state_ssr> sim(p, p.all_states(), init,
                                                   seed);
    EXPECT_TRUE(sim.run_until_correct(100'000'000ull));
    return sim.parallel_time();
  });
  const auto ks = ks_two_sample(direct, fast);
  EXPECT_GT(ks.p_value, 0.001) << "KS statistic " << ks.statistic;
}

TEST(AcceleratedSimulation, OptimalSilentMatchesDirectDistribution) {
  // The generic count-based simulator handles the full three-role protocol
  // (k = 3n + E + 2(R + D + 1) states) and must agree with direct
  // simulation in distribution, exercising resets, the dormant election
  // and the ranking pipeline.
  const std::uint32_t n = 6;
  optimal_silent_ssr p(n, small_tuning(n));
  const auto init = p.initial_configuration();

  const auto direct = run_trials(200, 93000, [&](std::uint64_t seed) {
    return measure_convergence(p, init, seed, {.max_parallel_time = 1e8})
        .convergence_time;
  });
  const auto fast = run_trials(200, 94000, [&](std::uint64_t seed) {
    accelerated_simulation<optimal_silent_ssr> sim(p, p.all_states(), init,
                                                   seed);
    EXPECT_TRUE(sim.run_until_correct(4'000'000'000ull));
    return sim.parallel_time();
  });
  const auto ks = ks_two_sample(direct, fast);
  EXPECT_GT(ks.p_value, 0.001) << "KS statistic " << ks.statistic;
}

TEST(AcceleratedSimulation, DetectsSilence) {
  const std::uint32_t n = 6;
  silent_n_state_ssr p(n);
  std::vector<silent_n_state_ssr::agent_state> ranked(n);
  for (std::uint32_t i = 0; i < n; ++i) ranked[i].rank = i;
  accelerated_simulation<silent_n_state_ssr> sim(p, p.all_states(), ranked,
                                                 1);
  EXPECT_TRUE(sim.silent());
  EXPECT_TRUE(sim.correct());
  EXPECT_TRUE(sim.run_until_correct(100));
  EXPECT_EQ(sim.interactions(), 0u);
}

TEST(AcceleratedSimulation, ReportsSilentButWrongAsStuck) {
  // The initialized protocol from all-followers: silent, leaderless,
  // forever.  run_until_correct must report failure immediately rather
  // than spinning.
  const std::uint32_t n = 4;
  initialized_leader_election p(n);
  std::vector<initialized_leader_election::agent_state> states(2);
  states[0].leader = false;
  states[1].leader = true;
  accelerated_simulation<initialized_leader_election> sim(
      p, states, p.all_followers(), 3);
  EXPECT_TRUE(sim.silent());
  EXPECT_FALSE(sim.run_until_correct(1'000'000ull));
  EXPECT_EQ(sim.interactions(), 0u);
}

TEST(AcceleratedSimulation, CountsArePreserved) {
  // Population size is invariant: counts always sum to n.
  const std::uint32_t n = 8;
  optimal_silent_ssr p(n, small_tuning(n));
  rng_t rng(5);
  const auto init = adversarial_configuration(
      p, optimal_silent_scenario::uniform_random, rng);
  accelerated_simulation<optimal_silent_ssr> sim(p, p.all_states(), init, 7);
  const auto states = p.all_states();
  for (int step = 0; step < 2000 && !sim.silent(); ++step) {
    sim.step();
    if (step % 100 != 0) continue;
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < states.size(); ++s) total += sim.count_of(s);
    ASSERT_EQ(total, n);
  }
}

TEST(AcceleratedSimulation, InteractionsCountIncludesSkippedNulls) {
  // From a two-agent collision in a large population, the expected jump is
  // ~n^2/2 interactions even though only one transition executes.
  const std::uint32_t n = 64;
  silent_n_state_ssr p(n);
  std::vector<silent_n_state_ssr::agent_state> init(n);
  for (std::uint32_t i = 0; i < n; ++i) init[i].rank = i;
  init[1].rank = 0;  // one collision; rank 1 free
  double total = 0.0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    accelerated_simulation<silent_n_state_ssr> sim(p, p.all_states(), init,
                                                   1000 + trial);
    sim.step();
    total += static_cast<double>(sim.interactions());
  }
  const double mean = total / trials;
  const double expected = static_cast<double>(n) * (n - 1) / 2.0;
  EXPECT_NEAR(mean, expected, 0.25 * expected);
}

TEST(AcceleratedSimulation, RejectsForeignStates) {
  silent_n_state_ssr p(4);
  std::vector<silent_n_state_ssr::agent_state> partial(1);  // only rank 0
  std::vector<silent_n_state_ssr::agent_state> init(4);
  init[2].rank = 3;  // not in the inventory
  EXPECT_THROW(accelerated_simulation<silent_n_state_ssr>(p, partial, init, 1),
               std::logic_error);
}

}  // namespace
}  // namespace ssr
