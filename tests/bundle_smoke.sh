#!/bin/sh
# End-to-end run-bundle smoke: execute a declarative scenario with
# `ssr_cli run`, verify the bundle manifest, check the job journal and the
# trace artifact (trace_stats must parse it unchanged), capture a
# baseline, rerun the scenario and compare clean (exit 0), compare against
# the doctored regression fixture (must exit non-zero), and check the
# validation + discovery surfaces (--list-scenarios/--list-protocols
# --json, field-level errors with nearest-name suggestions).
#
#   bundle_smoke.sh <ssr_cli> <trace_stats> <scenario.json> \
#                   <regressed_baseline.json>
#
# Run by ctest (bundle_e2e) and by the CI bundle leg; exits non-zero on
# the first failed step.  BUNDLE_SMOKE_OUT_DIR, when set, keeps the first
# bundle there for artifact upload; by default everything stays in a
# scratch directory removed on exit.
set -eu

CLI=$1
TRACE_STATS=$2
SCENARIO=$3
REGRESSED=$4

WORK=$(mktemp -d bundle_smoke.XXXXXX)
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT INT TERM

BUNDLE=${BUNDLE_SMOKE_OUT_DIR:-$WORK/bundle}

echo "== run scenario -> bundle"
"$CLI" run "$SCENARIO" --out "$BUNDLE"
for f in scenario.json run.json events.jsonl trace.jsonl metrics.prom \
         summary.md bundle_manifest.json; do
  test -s "$BUNDLE/$f" || { echo "FAIL: missing $BUNDLE/$f" >&2; exit 1; }
done

echo "== manifest verifies"
"$CLI" bundle verify "$BUNDLE"

echo "== job journal recorded the lifecycle"
grep -q '"event":"journal_header"' "$BUNDLE/events.jsonl"
grep -q '"schema":"ssr.events"' "$BUNDLE/events.jsonl"
grep -q '"event":"admit"' "$BUNDLE/events.jsonl"
grep -q '"event":"complete"' "$BUNDLE/events.jsonl"

echo "== trace_stats parses the bundle's trace unchanged"
"$TRACE_STATS" "$BUNDLE/trace.jsonl"
"$TRACE_STATS" --format=json "$BUNDLE/trace.jsonl" | grep -q '"interactions"'

echo "== capture baseline"
"$CLI" baseline capture "$BUNDLE" --baselines "$WORK/baselines"
NAME=$(sed -n 's/.*"name": "\([^"]*\)".*/\1/p' "$BUNDLE/scenario.json" \
  | head -n1)
test -s "$WORK/baselines/$NAME.json"

echo "== rerun + compare must pass clean"
"$CLI" run "$SCENARIO" --out "$WORK/bundle2"
cmp "$BUNDLE/run.json" "$WORK/bundle2/run.json"
"$CLI" compare "$WORK/bundle2" --against "$WORK/baselines"

echo "== compare against the doctored regression fixture must gate"
if "$CLI" compare "$WORK/bundle2" --against "$REGRESSED" \
    >"$WORK/regressed.out" 2>&1; then
  echo "FAIL: compare accepted the regressed baseline" >&2
  cat "$WORK/regressed.out" >&2
  exit 1
fi
grep -q 'REGRESSION' "$WORK/regressed.out"

echo "== tampering must fail verification"
cp -r "$BUNDLE" "$WORK/tampered"
printf '{"tampered":true}\n' >"$WORK/tampered/run.json"
if "$CLI" bundle verify "$WORK/tampered" >"$WORK/tampered.out" 2>&1; then
  echo "FAIL: verify accepted a tampered bundle" >&2
  exit 1
fi
grep -q 'run.json' "$WORK/tampered.out"

echo "== machine-readable discovery surfaces"
"$CLI" --list-scenarios --json >"$WORK/scenarios.json"
grep -q '"schema": "ssr.scenarios"' "$WORK/scenarios.json"
grep -q '"no_leader"' "$WORK/scenarios.json"
"$CLI" --list-protocols --json >"$WORK/protocols.json"
grep -q '"schema": "ssr.protocols"' "$WORK/protocols.json"
grep -q '"optimal"' "$WORK/protocols.json"

echo "== invalid scenario fails with field-level suggestions"
printf '%s\n' \
  '{"schema":"ssr.scenario","schema_version":1,"name":"bad",' \
  ' "protocol":"optiml","scenaro":"no_leader","n":16}' \
  >"$WORK/bad_scenario.json"
if "$CLI" run "$WORK/bad_scenario.json" --out "$WORK/bad_bundle" \
    >"$WORK/bad.out" 2>&1; then
  echo "FAIL: invalid scenario was accepted" >&2
  exit 1
fi
grep -q 'did you mean' "$WORK/bad.out"
test ! -e "$WORK/bad_bundle/run.json"

echo "bundle smoke: PASS"
