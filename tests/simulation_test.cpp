#include "pp/simulation.hpp"

#include <gtest/gtest.h>

#include "protocols/silent_n_state.hpp"

namespace ssr {
namespace {

std::vector<silent_n_state_ssr::agent_state> all_zero(std::uint32_t n) {
  return std::vector<silent_n_state_ssr::agent_state>(n);
}

TEST(Simulation, TracksInteractionsAndParallelTime) {
  silent_n_state_ssr protocol(10);
  simulation<silent_n_state_ssr> sim(protocol, all_zero(10), 1);
  for (int i = 0; i < 25; ++i) sim.step();
  EXPECT_EQ(sim.interactions(), 25u);
  EXPECT_DOUBLE_EQ(sim.parallel_time(), 2.5);
}

TEST(Simulation, RejectsMismatchedConfigurationSize) {
  silent_n_state_ssr protocol(10);
  EXPECT_THROW(simulation<silent_n_state_ssr>(protocol, all_zero(9), 1),
               std::logic_error);
}

TEST(Simulation, DeterministicForSameSeed) {
  silent_n_state_ssr protocol(8);
  simulation<silent_n_state_ssr> sim1(protocol, all_zero(8), 99);
  simulation<silent_n_state_ssr> sim2(protocol, all_zero(8), 99);
  for (int i = 0; i < 500; ++i) {
    sim1.step();
    sim2.step();
  }
  for (std::uint32_t i = 0; i < 8; ++i)
    EXPECT_EQ(sim1.agents()[i].rank, sim2.agents()[i].rank);
}

TEST(Simulation, RunUntilStopsOnPredicate) {
  silent_n_state_ssr protocol(6);
  simulation<silent_n_state_ssr> sim(protocol, all_zero(6), 3);
  const bool stopped = sim.run_until(
      [](const simulation<silent_n_state_ssr>& s) {
        return is_valid_ranking(s.protocol(), s.agents());
      },
      1'000'000);
  EXPECT_TRUE(stopped);
  EXPECT_TRUE(is_valid_ranking(sim.protocol(), sim.agents()));
}

TEST(Simulation, RunUntilHonorsInteractionCap) {
  silent_n_state_ssr protocol(6);
  simulation<silent_n_state_ssr> sim(protocol, all_zero(6), 3);
  const bool stopped = sim.run_until(
      [](const simulation<silent_n_state_ssr>&) { return false; }, 100);
  EXPECT_FALSE(stopped);
  EXPECT_EQ(sim.interactions(), 100u);
}

TEST(Simulation, SilenceDetection) {
  silent_n_state_ssr protocol(5);
  // Distinct ranks: the unique silent configuration.
  std::vector<silent_n_state_ssr::agent_state> distinct(5);
  for (std::uint32_t i = 0; i < 5; ++i) distinct[i].rank = i;
  simulation<silent_n_state_ssr> silent_sim(protocol, distinct, 1);
  EXPECT_TRUE(silent_sim.is_silent_configuration());

  simulation<silent_n_state_ssr> loud_sim(protocol, all_zero(5), 1);
  EXPECT_FALSE(loud_sim.is_silent_configuration());
}

TEST(Simulation, FaultInjectionThroughMutableAgents) {
  silent_n_state_ssr protocol(5);
  std::vector<silent_n_state_ssr::agent_state> distinct(5);
  for (std::uint32_t i = 0; i < 5; ++i) distinct[i].rank = i;
  simulation<silent_n_state_ssr> sim(protocol, distinct, 1);
  sim.mutable_agents()[0].rank = 3;  // transient fault: duplicate rank 3
  EXPECT_FALSE(sim.is_silent_configuration());
}

TEST(ProtocolConcepts, ValidRankingPredicate) {
  silent_n_state_ssr protocol(4);
  std::vector<silent_n_state_ssr::agent_state> config(4);
  for (std::uint32_t i = 0; i < 4; ++i) config[i].rank = i;
  EXPECT_TRUE(is_valid_ranking(protocol, config));
  EXPECT_EQ(leader_count(protocol, config), 1u);

  config[2].rank = 1;  // duplicate
  EXPECT_FALSE(is_valid_ranking(protocol, config));
}

TEST(ProtocolConcepts, LeaderIsRankOne) {
  silent_n_state_ssr protocol(4);
  silent_n_state_ssr::agent_state s;
  s.rank = 0;  // rank_of maps to formal rank 1
  EXPECT_TRUE(is_leader(protocol, s));
  s.rank = 2;
  EXPECT_FALSE(is_leader(protocol, s));
}

}  // namespace
}  // namespace ssr
