#include "analysis/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ssr {
namespace {

TEST(LinearFit, ExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{3.0, 5.0, 7.0, 9.0};
  const linear_fit_result f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineStillClose) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(0.5 * i + 2.0 + ((i % 3) - 1) * 0.01);
  }
  const linear_fit_result f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 0.5, 1e-3);
  EXPECT_GT(f.r_squared, 0.999);
}

TEST(LinearFit, RejectsDegenerateInput) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(linear_fit(one, one), std::logic_error);
  const std::vector<double> constant{2.0, 2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(linear_fit(constant, ys), std::logic_error);
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW(linear_fit(xs, ys), std::logic_error);  // size mismatch
}

TEST(LogLogFit, RecoversPowerLawExponent) {
  std::vector<double> xs, ys;
  for (double x = 8; x <= 1024; x *= 2) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);  // y = 3 x^2
  }
  const linear_fit_result f = loglog_fit(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-10);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-9);
}

TEST(LogLogFit, LogarithmicGrowthHasNearZeroExponent) {
  std::vector<double> xs, ys;
  for (double x = 64; x <= 65536; x *= 2) {
    xs.push_back(x);
    ys.push_back(std::log(x));
  }
  const linear_fit_result f = loglog_fit(xs, ys);
  EXPECT_LT(f.slope, 0.35);
  EXPECT_GT(f.slope, 0.0);
}

TEST(LogLogFit, RejectsNonPositiveValues) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{0.0, 2.0};
  EXPECT_THROW(loglog_fit(xs, ys), std::logic_error);
}

}  // namespace
}  // namespace ssr
