// Direct unit tests for the shared SCC kernel (verify/scc.hpp) on
// hand-built digraphs, plus the two exhaustive verifiers that reduce to it
// (verify/reachability.hpp over multisets, verify/graph_reachability.hpp
// over position-aware tuples) on edge-case inputs.  The kernel's contract
// -- component ids in reverse topological order, self-loops never
// disqualifying terminality -- is what the model checker's absorption
// solver builds on, so it is pinned here independently of any protocol.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "pp/graph.hpp"
#include "protocols/silent_n_state.hpp"
#include "verify/graph_reachability.hpp"
#include "verify/reachability.hpp"
#include "verify/scc.hpp"

namespace ssr {
namespace {

using adjacency_t = std::vector<std::vector<std::size_t>>;

TEST(SccKernel, EmptyGraphHasZeroComponents) {
  const scc_result scc = strongly_connected_components(adjacency_t{});
  EXPECT_EQ(scc.count, 0u);
  EXPECT_TRUE(scc.component.empty());
  EXPECT_TRUE(terminal_components({}, scc).empty());
  EXPECT_TRUE(component_sizes(scc).empty());
}

TEST(SccKernel, IsolatedVertexIsATerminalSingleton) {
  const adjacency_t g{{}};
  const scc_result scc = strongly_connected_components(g);
  ASSERT_EQ(scc.count, 1u);
  EXPECT_EQ(scc.component[0], 0u);
  EXPECT_EQ(terminal_components(g, scc), std::vector<bool>{true});
  EXPECT_EQ(component_sizes(scc), std::vector<std::size_t>{1});
}

// The contract silence detection relies on: a vertex whose only edge is a
// self-loop is still a *terminal* singleton component (the spin stays
// inside the component), distinguishable from silent only via the
// caller's non-null bookkeeping.
TEST(SccKernel, SelfLoopSingletonStaysTerminal) {
  const adjacency_t g{{0}};
  const scc_result scc = strongly_connected_components(g);
  ASSERT_EQ(scc.count, 1u);
  EXPECT_EQ(terminal_components(g, scc), std::vector<bool>{true});
  EXPECT_EQ(component_sizes(scc), std::vector<std::size_t>{1});
}

TEST(SccKernel, TwoCycleIsOneComponent) {
  const adjacency_t g{{1}, {0}};
  const scc_result scc = strongly_connected_components(g);
  ASSERT_EQ(scc.count, 1u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(terminal_components(g, scc), std::vector<bool>{true});
  EXPECT_EQ(component_sizes(scc), std::vector<std::size_t>{2});
}

// 0 -> 1 -> 2: three singleton components; only the sink is terminal, and
// ids run in reverse topological order (the property the absorption solver
// uses to process successors before predecessors).
TEST(SccKernel, ChainIdsAreReverseTopological) {
  const adjacency_t g{{1}, {2}, {}};
  const scc_result scc = strongly_connected_components(g);
  ASSERT_EQ(scc.count, 3u);
  EXPECT_GT(scc.component[0], scc.component[1]);
  EXPECT_GT(scc.component[1], scc.component[2]);
  const std::vector<bool> terminal = terminal_components(g, scc);
  EXPECT_FALSE(terminal[scc.component[0]]);
  EXPECT_FALSE(terminal[scc.component[1]]);
  EXPECT_TRUE(terminal[scc.component[2]]);
}

// Cycle {0,1} feeding cycle {2,3}: the condensation is an edge between two
// two-vertex components; the source component is not terminal and carries
// the larger id.
TEST(SccKernel, CondensationOfTwoCycles) {
  const adjacency_t g{{1}, {0, 2}, {3}, {2}};
  const scc_result scc = strongly_connected_components(g);
  ASSERT_EQ(scc.count, 2u);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[2], scc.component[3]);
  EXPECT_GT(scc.component[0], scc.component[2]);
  const std::vector<bool> terminal = terminal_components(g, scc);
  EXPECT_FALSE(terminal[scc.component[0]]);
  EXPECT_TRUE(terminal[scc.component[2]]);
  EXPECT_EQ(component_sizes(scc), (std::vector<std::size_t>{2, 2}));
}

// Two disjoint sinks: multiple terminal components coexist (the shape of a
// non-self-stabilizing protocol with a wrong stable outcome).
TEST(SccKernel, DisjointSinksAreBothTerminal) {
  const adjacency_t g{{1, 2}, {}, {}};
  const scc_result scc = strongly_connected_components(g);
  ASSERT_EQ(scc.count, 3u);
  const std::vector<bool> terminal = terminal_components(g, scc);
  std::size_t terminal_count = 0;
  for (const bool t : terminal) terminal_count += t ? 1 : 0;
  EXPECT_EQ(terminal_count, 2u);
  EXPECT_FALSE(terminal[scc.component[0]]);
}

TEST(SccKernel, DuplicateEdgesDoNotAffectTheResult) {
  const adjacency_t g{{1, 1, 1}, {0, 0}};
  const scc_result scc = strongly_connected_components(g);
  EXPECT_EQ(scc.count, 1u);
  EXPECT_EQ(terminal_components(g, scc), std::vector<bool>{true});
}

TEST(SccKernel, ComponentSizesSumToVertexCount) {
  // A mixed graph: a 3-cycle, a tail, and an isolated vertex.
  const adjacency_t g{{1}, {2}, {0}, {0}, {}};
  const scc_result scc = strongly_connected_components(g);
  const std::vector<std::size_t> sizes = component_sizes(scc);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
            g.size());
  for (std::size_t v = 0; v < g.size(); ++v) {
    EXPECT_LT(scc.component[v], scc.count);
  }
}

// A long directed path exercises the iterative Tarjan's explicit frame
// stack: every vertex is its own component and ids stay reverse
// topological end to end.
TEST(SccKernel, LongPathDoesNotRecurse) {
  const std::size_t len = 10000;
  adjacency_t g(len);
  for (std::size_t v = 0; v + 1 < len; ++v) g[v].push_back(v + 1);
  const scc_result scc = strongly_connected_components(g);
  ASSERT_EQ(scc.count, len);
  for (std::size_t v = 0; v + 1 < len; ++v) {
    EXPECT_GT(scc.component[v], scc.component[v + 1]);
  }
}

// The multiset verifier on Protocol 1 at n=2: three configurations, one
// correct silent sink -- the smallest real instance of the terminal-SCC
// criterion.
TEST(ReachabilityVerifier, BaselineAtTwoAgents) {
  const silent_n_state_ssr p(2);
  const verification_result r =
      verify_self_stabilization(p, p.all_states());
  EXPECT_EQ(r.configurations, 3u);
  EXPECT_EQ(r.terminal_components, 1u);
  EXPECT_TRUE(r.self_stabilizing);
  EXPECT_TRUE(r.silent);
  EXPECT_FALSE(r.counterexample.has_value());
}

// The position-aware verifier agrees with the multiset one on the complete
// graph (where agent positions are interchangeable).
TEST(GraphReachabilityVerifier, CompleteGraphMatchesMultisetVerdict) {
  const silent_n_state_ssr p(3);
  const graph_verification_result r = verify_on_graph(
      p, interaction_graph::complete(3), p.all_states());
  EXPECT_EQ(r.configurations, 27u);  // 3^3 position-aware tuples
  EXPECT_TRUE(r.self_stabilizing);
  EXPECT_TRUE(r.silent);
}

// On a 4-ring two equal-rank agents on opposite corners never meet:
// an incorrect silent terminal configuration exists and the verifier must
// surface a counterexample.
TEST(GraphReachabilityVerifier, RingBreaksBaselineWithWitness) {
  const silent_n_state_ssr p(4);
  const graph_verification_result r =
      verify_on_graph(p, interaction_graph::ring(4), p.all_states());
  EXPECT_FALSE(r.self_stabilizing);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_EQ(r.counterexample->size(), 4u);
}

}  // namespace
}  // namespace ssr
