// serve/result_cache.hpp: the fingerprint-keyed LRU behind ssr_serve.
// Exactness is carried by the fingerprint (request_spec_test.cpp); these
// tests pin the LRU mechanics -- hit/miss accounting, recency refresh on
// both get and put, eviction order, the capacity-0 kill switch, and the
// shared_ptr contract that keeps an evicted entry alive while a response
// still holds it.
#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "obs/json.hpp"

namespace ssr::serve {
namespace {

std::shared_ptr<const obs::json_value> payload(double v) {
  auto doc = std::make_shared<obs::json_value>(obs::json_value::object());
  (*doc)["value"] = v;
  return doc;
}

double value_of(const std::shared_ptr<const obs::json_value>& doc) {
  return doc->find("value")->as_double();
}

TEST(ServeCache, MissThenHit) {
  result_cache cache(4);
  EXPECT_EQ(cache.get("a"), nullptr);
  cache.put("a", payload(1.0));
  const auto hit = cache.get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(value_of(hit), 1.0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeCache, EvictsLeastRecentlyUsed) {
  result_cache cache(2);
  cache.put("a", payload(1.0));
  cache.put("b", payload(2.0));
  cache.put("c", payload(3.0));
  EXPECT_EQ(cache.get("a"), nullptr);  // oldest insert went first
  EXPECT_NE(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ServeCache, GetRefreshesRecency) {
  result_cache cache(2);
  cache.put("a", payload(1.0));
  cache.put("b", payload(2.0));
  ASSERT_NE(cache.get("a"), nullptr);  // a is now the most recent
  cache.put("c", payload(3.0));
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
}

TEST(ServeCache, PutRefreshesExistingEntry) {
  result_cache cache(2);
  cache.put("a", payload(1.0));
  cache.put("b", payload(2.0));
  cache.put("a", payload(10.0));  // refresh, not a growth
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  cache.put("c", payload(3.0));  // b is now the LRU entry
  EXPECT_EQ(cache.get("b"), nullptr);
  const auto a = cache.get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(value_of(a), 10.0);
}

TEST(ServeCache, ZeroCapacityDisablesCaching) {
  result_cache cache(0);
  cache.put("a", payload(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hit_rate(), 0.0);
}

TEST(ServeCache, EvictedEntrySurvivesThroughSharedPtr) {
  result_cache cache(1);
  cache.put("a", payload(1.0));
  const auto held = cache.get("a");
  ASSERT_NE(held, nullptr);
  cache.put("b", payload(2.0));  // evicts a while we still hold it
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(value_of(held), 1.0);  // snapshot stays valid
}

TEST(ServeCache, HitRateMath) {
  result_cache cache(4);
  EXPECT_EQ(cache.hit_rate(), 0.0);  // no queries yet
  cache.put("a", payload(1.0));
  (void)cache.get("a");
  (void)cache.get("a");
  (void)cache.get("missing");
  (void)cache.get("also-missing");
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

}  // namespace
}  // namespace ssr::serve
