#include "protocols/sublinear.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pp/convergence.hpp"
#include "pp/scheduler.hpp"
#include "pp/simulation.hpp"
#include "protocols/adversary.hpp"

namespace ssr {
namespace {

using role_t = sublinear_time_ssr::role_t;
using state_t = sublinear_time_ssr::agent_state;

name_t nm(const std::string& bits) {
  name_t n;
  for (const char c : bits) n.append_bit(c == '1');
  return n;
}

state_t collecting(const name_t& name) {
  state_t s;
  s.role = role_t::collecting;
  s.name = name;
  s.roster.assign(1, name);
  s.tree.reset(name);
  return s;
}

TEST(SublinearTuning, DefaultsAreSane) {
  const auto t = sublinear_time_ssr::tuning::defaults(64, 2);
  EXPECT_EQ(t.h, 2u);
  EXPECT_EQ(t.name_bits, 18u);  // 3 * log2(64)
  EXPECT_GE(t.d_max, t.name_bits);
  EXPECT_EQ(t.s_max, 64u * 64u);
  EXPECT_GT(t.t_h, 0u);
}

TEST(SublinearTuning, TimerShrinksWithH) {
  // T_H = Theta(H n^{1/(H+1)}) decreases sharply from H=1 to H=3 at n=4096.
  const auto t1 = sublinear_time_ssr::tuning::defaults(4096, 1);
  const auto t3 = sublinear_time_ssr::tuning::defaults(4096, 3);
  EXPECT_GT(t1.t_h, t3.t_h);
}

TEST(Sublinear, RosterUnionHelpers) {
  const std::vector<name_t> a{nm("00"), nm("01")};
  const std::vector<name_t> b{nm("01"), nm("11")};
  EXPECT_EQ(union_size(a, b), 3u);
  const auto u = roster_union(a, b);
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u[0], nm("00"));
  EXPECT_EQ(u[1], nm("01"));
  EXPECT_EQ(u[2], nm("11"));
  EXPECT_EQ(union_size(a, a), 2u);
  EXPECT_EQ(union_size({}, b), 2u);
}

TEST(Sublinear, RosterMergeAndRankAssignment) {
  sublinear_time_ssr p(2, 1u);
  rng_t rng(1);
  state_t a = collecting(nm("000000"));
  state_t b = collecting(nm("000011"));
  EXPECT_TRUE(p.interact(a, b, rng));
  // n = 2: rosters are complete after one merge, ranks assigned by
  // lexicographic order.
  ASSERT_EQ(a.roster.size(), 2u);
  EXPECT_EQ(p.rank_of(a), 1u);
  EXPECT_EQ(p.rank_of(b), 2u);
}

TEST(Sublinear, DirectNameEqualityTriggersReset) {
  sublinear_time_ssr p(4, 1u);
  rng_t rng(1);
  state_t a = collecting(nm("0101"));
  state_t b = collecting(nm("0101"));
  EXPECT_TRUE(p.interact(a, b, rng));
  EXPECT_EQ(a.role, role_t::resetting);
  EXPECT_EQ(b.role, role_t::resetting);
  EXPECT_EQ(a.reset.resetcount, p.params().r_max);
}

TEST(Sublinear, GhostNamesTriggerReset) {
  const std::uint32_t n = 3;
  sublinear_time_ssr p(n, 1u);
  rng_t rng(1);
  state_t a = collecting(nm("0000"));
  state_t b = collecting(nm("0011"));
  // Plant ghosts: a's roster claims two more names.
  a.roster = {nm("0000"), nm("0101"), nm("0110")};
  // Union would have 4 > n names.
  EXPECT_TRUE(p.interact(a, b, rng));
  EXPECT_EQ(a.role, role_t::resetting);
  EXPECT_EQ(b.role, role_t::resetting);
}

TEST(Sublinear, MissingOwnNameTriggersReset) {
  sublinear_time_ssr p(4, 1u);
  rng_t rng(1);
  state_t a = collecting(nm("0000"));
  a.roster = {nm("1111")};  // corrupt: own name absent
  state_t b = collecting(nm("0011"));
  EXPECT_TRUE(p.interact(a, b, rng));
  EXPECT_EQ(a.role, role_t::resetting);
}

TEST(Sublinear, ResettingAgentsClearNamesWhilePropagating) {
  sublinear_time_ssr p(4, 1u);
  rng_t rng(1);
  state_t a = collecting(nm("0101"));
  state_t b = collecting(nm("0101"));
  p.interact(a, b, rng);  // collision -> both triggered
  ASSERT_EQ(a.role, role_t::resetting);
  p.interact(a, b, rng);  // propagating: names cleared (lines 12-13)
  EXPECT_TRUE(a.name.empty());
  EXPECT_TRUE(b.name.empty());
}

TEST(Sublinear, DormantAgentsRegenerateNamesBitByBit) {
  sublinear_time_ssr p(4, 1u);
  rng_t rng(1);
  state_t a, b;
  a.role = b.role = role_t::resetting;
  a.reset.resetcount = b.reset.resetcount = 0;
  a.reset.delaytimer = b.reset.delaytimer = p.params().d_max;
  p.interact(a, b, rng);
  EXPECT_EQ(a.name.length(), 1u);
  EXPECT_EQ(b.name.length(), 1u);
}

TEST(Sublinear, ResetRestartsCollectionFromOwnName) {
  sublinear_time_ssr p(4, 1u);
  rng_t rng(1);
  // A dormant agent with a full name awakening against a computing agent.
  state_t dormant;
  dormant.role = role_t::resetting;
  dormant.reset.resetcount = 0;
  dormant.reset.delaytimer = 2;
  dormant.name = nm("010101");
  state_t awake = collecting(nm("111000"));
  p.interact(dormant, awake, rng);
  EXPECT_EQ(dormant.role, role_t::collecting);
  ASSERT_EQ(dormant.roster.size(), 1u);
  EXPECT_EQ(dormant.roster[0], nm("010101"));
  EXPECT_EQ(dormant.tree.root_name(), nm("010101"));
  EXPECT_EQ(p.rank_of(dormant), 0u);
}

TEST(Sublinear, TreesRecordInteractions) {
  sublinear_time_ssr p(4, 2u);
  rng_t rng(1);
  state_t a = collecting(nm("000000"));
  state_t b = collecting(nm("000011"));
  p.interact(a, b, rng);
  ASSERT_EQ(a.tree.root().edges.size(), 1u);
  ASSERT_EQ(b.tree.root().edges.size(), 1u);
  EXPECT_EQ(a.tree.root().edges[0].child.name, b.name);
  // Shared sync value on both sides (Protocol 7 line 5).
  EXPECT_EQ(a.tree.root().edges[0].sync, b.tree.root().edges[0].sync);
}

TEST(Sublinear, IndirectCollisionDetectedThroughWitness) {
  // H = 1 dictionary scheme: witness w meets real agent x, then meets an
  // impostor x' with the same name but no matching sync -> collision.
  const std::uint32_t n = 8;
  sublinear_time_ssr p(n, 1u);
  rng_t rng(7);
  state_t x = collecting(nm("000111000"));
  state_t x2 = collecting(nm("000111000"));  // impostor: same name
  state_t w = collecting(nm("111000111"));
  ASSERT_TRUE(p.interact(w, x, rng));  // w records x with some sync
  // With S_max = n^2 = 64, the chance the impostor's (absent) record
  // matches is zero: x2 has no record of w at all, and w's path ending at
  // the shared name finds no consistent reversed suffix in x2's tree.
  EXPECT_TRUE(p.name_collision_detected(w, x2));
  EXPECT_FALSE(p.name_collision_detected(w, x));
}

TEST(Sublinear, ConvergesFromCleanStart) {
  const std::uint32_t n = 8;
  for (const std::uint32_t h : {0u, 1u, 2u, 3u}) {
    sublinear_time_ssr p(n, h);
    rng_t rng(h + 1);
    auto init = p.initial_configuration(rng);
    std::vector<state_t> final_config;
    convergence_options opt;
    opt.max_parallel_time = 1e5;
    opt.confirm_parallel_time = 50.0;
    const auto r =
        measure_convergence(p, std::move(init), 17 + h, opt, &final_config);
    ASSERT_TRUE(r.converged) << "h=" << h;
    EXPECT_TRUE(is_valid_ranking(p, final_config)) << "h=" << h;
    EXPECT_EQ(leader_count(p, final_config), 1u) << "h=" << h;
  }
}

TEST(Sublinear, AllSameNameRecovers) {
  const std::uint32_t n = 6;
  sublinear_time_ssr p(n, 1u);
  rng_t rng(3);
  auto init =
      adversarial_configuration(p, sublinear_scenario::all_same_name, rng);
  std::vector<state_t> final_config;
  convergence_options opt;
  opt.max_parallel_time = 1e5;
  opt.confirm_parallel_time = 50.0;
  const auto r = measure_convergence(p, std::move(init), 23, opt,
                                     &final_config);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(is_valid_ranking(p, final_config));
  // All names must now be distinct.
  std::set<name_t> names;
  for (const auto& s : final_config) names.insert(s.name);
  EXPECT_EQ(names.size(), n);
}

// Safety: from a clean configuration with unique names, no false-positive
// collision may ever be declared (the stabilized ranking must be stable).
TEST(Sublinear, NoFalsePositiveFromCleanConfiguration) {
  const std::uint32_t n = 8;
  for (const std::uint32_t h : {1u, 2u, 3u}) {
    sublinear_time_ssr p(n, h);
    rng_t rng(41 * (h + 1));
    auto init = adversarial_configuration(
        p, sublinear_scenario::valid_ranking, rng);
    simulation<sublinear_time_ssr> sim(p, std::move(init), 91 + h);
    // Long run: any reset would destroy the ranking.
    for (int step = 0; step < 20000; ++step) sim.step();
    EXPECT_TRUE(is_valid_ranking(sim.protocol(), sim.agents())) << "h=" << h;
    for (const auto& s : sim.agents())
      EXPECT_EQ(s.role, role_t::collecting) << "h=" << h;
  }
}

TEST(Sublinear, TreeInvariantsHoldDuringExecution) {
  const std::uint32_t n = 8;
  const std::uint32_t h = 2;
  sublinear_time_ssr p(n, h);
  rng_t rng(5);
  auto init = p.initial_configuration(rng);
  simulation<sublinear_time_ssr> sim(p, std::move(init), 55);
  for (int step = 0; step < 3000; ++step) {
    sim.step();
    if (step % 500 != 0) continue;
    for (const auto& s : sim.agents()) {
      if (s.role != role_t::collecting) continue;
      EXPECT_LE(s.tree.depth(), h);
      EXPECT_TRUE(s.tree.simply_labelled());
      EXPECT_LE(s.roster.size(), static_cast<std::size_t>(n));
    }
  }
}

// Section 5.2's headline: indirect detection through witnesses beats
// waiting for the colliding pair to meet.  From single_collision (the only
// error signal is the duplicated name), H = 1 must detect collisions much
// faster than H = 0 on average.
TEST(Sublinear, IndirectDetectionBeatsDirect) {
  const std::uint32_t n = 32;
  auto mean_detection = [&](std::uint32_t h) {
    double total = 0.0;
    const int trials = 15;
    for (int trial = 0; trial < trials; ++trial) {
      sublinear_time_ssr p(n, h);
      rng_t rng(derive_seed(777 + h, trial));
      auto agents = adversarial_configuration(
          p, sublinear_scenario::single_collision, rng);
      rng_t sched(derive_seed(888 + h, trial));
      std::uint64_t steps = 0;
      auto any_resetting = [&] {
        for (const auto& s : agents)
          if (s.role == sublinear_time_ssr::role_t::resetting) return true;
        return false;
      };
      while (!any_resetting()) {
        const agent_pair pair = sample_pair(sched, n);
        p.interact(agents[pair.initiator], agents[pair.responder], sched);
        ++steps;
      }
      total += static_cast<double>(steps) / n;
    }
    return total / trials;
  };
  const double direct = mean_detection(0);
  const double indirect = mean_detection(1);
  EXPECT_GT(direct, 2.0 * indirect)
      << "H=0: " << direct << ", H=1: " << indirect;
}

TEST(Sublinear, RejectsBadTuning) {
  sublinear_time_ssr::tuning t{};  // s_max too small
  EXPECT_THROW(sublinear_time_ssr(8, t), std::logic_error);
}

}  // namespace
}  // namespace ssr
