// perf_counter_group (obs/perf_counters.hpp) must work wherever the suite
// runs: bare metal with full perf access, containers where
// perf_event_paranoid blocks some or all events, and non-Linux stub
// builds.  The tests therefore assert the *contract* -- per-counter
// availability flags, a human-readable status, saturating deltas -- and
// only check counter values on paths that are available here.
#include "obs/perf_counters.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstdint>

#include "obs/json.hpp"

namespace ssr::obs {
namespace {

TEST(ObsPerf, CounterIdsHaveNames) {
  EXPECT_EQ(to_string(perf_counter_id::cycles), "cycles");
  EXPECT_EQ(to_string(perf_counter_id::instructions), "instructions");
  EXPECT_EQ(to_string(perf_counter_id::branch_misses), "branch_misses");
  EXPECT_EQ(to_string(perf_counter_id::cache_misses), "cache_misses");
  EXPECT_EQ(to_string(perf_counter_id::task_clock), "task_clock");
}

TEST(ObsPerf, ValuesArithmeticIsSaturatingAndAndsAvailability) {
  perf_counter_values before, after;
  before.value[0] = 100;  // cycles
  before.available[0] = true;
  after.value[0] = 350;
  after.available[0] = true;
  // instructions available only on one side: the delta must not claim it.
  after.value[1] = 77;
  after.available[1] = true;

  const perf_counter_values delta = after - before;
  EXPECT_TRUE(delta.has(perf_counter_id::cycles));
  EXPECT_EQ(delta[perf_counter_id::cycles], 250u);
  EXPECT_FALSE(delta.has(perf_counter_id::instructions));

  // A counter that moved backwards (group re-opened, multiplex glitch)
  // saturates to 0 instead of wrapping to ~2^64.
  perf_counter_values regressed = before;
  regressed.value[0] = 10;
  const perf_counter_values wrapped = regressed - before;
  EXPECT_EQ(wrapped[perf_counter_id::cycles], 0u);

  perf_counter_values acc;
  acc += delta;
  acc += delta;
  EXPECT_EQ(acc[perf_counter_id::cycles], 500u);
  EXPECT_TRUE(acc.any_available());
}

TEST(ObsPerf, ValuesToJsonEmitsOnlyAvailableCounters) {
  perf_counter_values v;
  v.value[1] = 42;  // instructions
  v.available[1] = true;
  const json_value j = v.to_json();
  ASSERT_TRUE(j.is_object());
  ASSERT_NE(j.find("instructions"), nullptr);
  EXPECT_EQ(j.find("instructions")->as_uint64(), 42u);
  EXPECT_EQ(j.find("cycles"), nullptr);
}

TEST(ObsPerf, GroupConstructsEverywhereAndReportsStatus) {
  perf_counter_group group;
  // Whatever the platform allows, the flags and status must be coherent:
  // available() iff at least one flag is set, and an unavailable group
  // explains itself.
  bool any = false;
  for (const bool flag : group.availability()) any = any || flag;
  EXPECT_EQ(group.available(), any);
  if (!group.available()) {
    EXPECT_FALSE(group.status().empty());
  }

  const json_value j = group.availability_json();
  ASSERT_NE(j.find("available"), nullptr);
  ASSERT_NE(j.find("status"), nullptr);
  for (std::size_t i = 0; i < perf_counter_count; ++i) {
    const json_value* flag = j.find("available")->find(
        to_string(static_cast<perf_counter_id>(i)));
    ASSERT_NE(flag, nullptr);
    EXPECT_EQ(flag->as_bool(), group.availability()[i]);
  }
}

TEST(ObsPerf, AvailableCountersReadMonotonically) {
  perf_counter_group group;
  if (!group.available()) {
    GTEST_SKIP() << "perf counters unavailable here: " << group.status();
  }
  const perf_counter_values first = group.read();
  // Burn some cycles so every running counter must advance.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i * i;
  const perf_counter_values second = group.read();
  for (std::size_t i = 0; i < perf_counter_count; ++i) {
    if (!group.availability()[i]) continue;
    EXPECT_GE(second.value[i], first.value[i])
        << to_string(static_cast<perf_counter_id>(i));
  }
  const perf_counter_values delta = second - first;
  if (group.availability()[static_cast<std::size_t>(
          perf_counter_id::task_clock)]) {
    EXPECT_GT(delta[perf_counter_id::task_clock], 0u);
  }
}

TEST(ObsPerf, DisableEnvForcesStubPath) {
  ::setenv("SSR_PERF_DISABLE", "1", 1);
  perf_counter_group group;
  ::unsetenv("SSR_PERF_DISABLE");
  EXPECT_FALSE(group.available());
  for (const bool flag : group.availability()) EXPECT_FALSE(flag);
  EXPECT_NE(group.status().find("SSR_PERF_DISABLE"), std::string::npos)
      << group.status();
  const perf_counter_values v = group.read();
  EXPECT_FALSE(v.any_available());
}

}  // namespace
}  // namespace ssr::obs
