// The serve layer in-process: admission control on the job queue, the
// full wire behavior of serve::service (validation golden errors, cache
// replay, saturation, deadlines, graceful drain), and -- under the
// ServeConcurrency suite, which the TSan concurrency leg re-runs -- many
// clients hammering one service from parallel threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/job_queue.hpp"
#include "serve/result_cache.hpp"
#include "serve/service.hpp"

namespace ssr::serve {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const obs::json_value> small_doc(double v) {
  auto doc = std::make_shared<obs::json_value>(obs::json_value::object());
  (*doc)["value"] = v;
  return doc;
}

/// Work that spins (politely) until released, polling its cancel token --
/// the shape of a real simulation job with the compute stripped out.
job_work blocking_work(std::atomic<bool>& release) {
  return [&release](const cancel_token& token) {
    while (!release.load()) {
      token.throw_if_cancelled();
      std::this_thread::sleep_for(1ms);
    }
    return small_doc(1.0);
  };
}

void wait_until_active(const job_queue& queue, std::size_t workers) {
  for (int i = 0; i < 5000 && queue.active_workers() < workers; ++i)
    std::this_thread::sleep_for(1ms);
  ASSERT_EQ(queue.active_workers(), workers);
}

TEST(ServeQueue, RejectsWhenSaturated) {
  std::atomic<bool> release{false};
  job_queue queue({.workers = 1, .max_depth = 1}, nullptr);
  const auto running = queue.try_submit(blocking_work(release));
  ASSERT_NE(running, nullptr);
  wait_until_active(queue, 1);

  const auto queued = queue.try_submit(blocking_work(release));
  ASSERT_NE(queued, nullptr);  // fills the single waiting slot
  EXPECT_EQ(queue.depth(), 1u);

  // Admission control: the queue sheds instead of buffering.
  EXPECT_EQ(queue.try_submit(blocking_work(release)), nullptr);

  release.store(true);
  running->wait();
  queued->wait();
  EXPECT_EQ(running->result_state(), job_handle::state::done);
  EXPECT_EQ(queued->result_state(), job_handle::state::done);
  queue.shutdown(true);
}

TEST(ServeQueue, DrainRunsEverythingAlreadyAccepted) {
  job_queue queue({.workers = 2, .max_depth = 16}, nullptr);
  std::vector<std::shared_ptr<job_handle>> handles;
  for (int i = 0; i < 8; ++i) {
    auto handle = queue.try_submit(
        [i](const cancel_token&) { return small_doc(i); });
    ASSERT_NE(handle, nullptr);
    handles.push_back(std::move(handle));
  }
  queue.shutdown(true);
  for (const auto& handle : handles)
    EXPECT_EQ(handle->result_state(), job_handle::state::done);
  // Admission is closed after shutdown.
  EXPECT_EQ(queue.try_submit([](const cancel_token&) { return small_doc(0); }),
            nullptr);
}

TEST(ServeQueue, ImmediateShutdownCancelsQueuedAndRunning) {
  std::atomic<bool> release{false};
  job_queue queue({.workers = 1, .max_depth = 4}, nullptr);
  const auto running = queue.try_submit(blocking_work(release));
  ASSERT_NE(running, nullptr);
  wait_until_active(queue, 1);
  const auto queued = queue.try_submit(blocking_work(release));
  ASSERT_NE(queued, nullptr);

  queue.shutdown(false);  // fires tokens, never runs the queued job
  EXPECT_EQ(running->result_state(), job_handle::state::cancelled);
  EXPECT_EQ(queued->result_state(), job_handle::state::cancelled);
}

TEST(ServeQueue, TokenCancelAbortsRunningJob) {
  std::atomic<bool> release{false};
  job_queue queue({.workers = 1, .max_depth = 4}, nullptr);
  const auto handle = queue.try_submit(blocking_work(release));
  ASSERT_NE(handle, nullptr);
  wait_until_active(queue, 1);
  handle->token().request_cancel();
  handle->wait();
  EXPECT_EQ(handle->result_state(), job_handle::state::cancelled);
  EXPECT_FALSE(handle->deadline_expired());
  queue.shutdown(true);
}

TEST(ServeQueue, DeadlineCancelIsDistinguishable) {
  std::atomic<bool> release{false};
  job_queue queue({.workers = 1, .max_depth = 4}, nullptr);
  const auto handle = queue.try_submit(blocking_work(release));
  ASSERT_NE(handle, nullptr);
  handle->token().set_deadline_after(5ms);
  handle->wait();
  EXPECT_EQ(handle->result_state(), job_handle::state::cancelled);
  EXPECT_TRUE(handle->deadline_expired());
  queue.shutdown(true);
}

// -- service: the wire behavior, no sockets involved. --------------------

service_options fast_options() {
  service_options options;
  options.workers = 2;
  options.max_queue_depth = 8;
  options.cache_capacity = 16;
  options.poll_interval = std::chrono::milliseconds{10};
  return options;
}

obs::json_value run_request(std::uint64_t n, std::uint64_t trials,
                            std::uint64_t seed) {
  obs::json_value request = obs::json_value::object();
  request["type"] = "run";
  request["protocol"] = "optimal";
  request["n"] = n;
  request["trials"] = trials;
  request["seed"] = seed;
  return request;
}

TEST(ServeService, MalformedJsonIsInvalidRequest) {
  service svc(fast_options());
  const obs::json_value response = svc.handle_line("{not json");
  EXPECT_EQ(response.find("type")->as_string(), "error");
  EXPECT_EQ(response.find("error")->as_string(), "invalid_request");
  EXPECT_FALSE(response.find("ok")->as_bool());
}

TEST(ServeService, UnknownRequestTypeSuggestsNearest) {
  service svc(fast_options());
  const obs::json_value response = svc.handle_line(R"({"type":"rnu"})");
  EXPECT_EQ(response.find("error")->as_string(), "invalid_request");
  EXPECT_NE(response.find("message")->as_string().find("did you mean run"),
            std::string::npos)
      << response.find("message")->as_string();
}

TEST(ServeService, ValidationErrorsAreFieldLevel) {
  service svc(fast_options());
  const obs::json_value response =
      svc.handle_line(R"({"type":"run","id":7,"protocol":"basline","n":1})");
  EXPECT_EQ(response.find("id")->as_int64(), 7);
  EXPECT_EQ(response.find("error")->as_string(), "invalid_request");
  const obs::json_value* errors = response.find("field_errors");
  ASSERT_NE(errors, nullptr);
  ASSERT_EQ(errors->size(), 2u);
  EXPECT_EQ(errors->at(0).find("field")->as_string(), "protocol");
  EXPECT_EQ(errors->at(0).find("message")->as_string(),
            "unknown protocol 'basline' (did you mean baseline?)");
  EXPECT_EQ(errors->at(1).find("field")->as_string(), "n");
  EXPECT_EQ(errors->at(1).find("message")->as_string(),
            "population size must be at least 2");
}

TEST(ServeService, WrongFieldTypesAndUnknownFieldsAreCaught) {
  service svc(fast_options());
  const obs::json_value response = svc.handle_line(
      R"({"type":"run","n":"forty","protocool":"optimal"})");
  const obs::json_value* errors = response.find("field_errors");
  ASSERT_NE(errors, nullptr);
  ASSERT_EQ(errors->size(), 2u);
  EXPECT_EQ(errors->at(0).find("field")->as_string(), "n");
  EXPECT_EQ(errors->at(0).find("message")->as_string(),
            "must be a non-negative integer");
  EXPECT_EQ(errors->at(1).find("field")->as_string(), "protocool");
  EXPECT_NE(
      errors->at(1).find("message")->as_string().find("did you mean protocol"),
      std::string::npos);
}

TEST(ServeService, PingPong) {
  service svc(fast_options());
  const obs::json_value response =
      svc.handle_line(R"({"type":"ping","id":"p1"})");
  EXPECT_EQ(response.find("type")->as_string(), "pong");
  EXPECT_EQ(response.find("id")->as_string(), "p1");
  EXPECT_TRUE(response.find("ok")->as_bool());
}

TEST(ServeService, RunThenCachedReplayIsBitIdentical) {
  service svc(fast_options());
  const obs::json_value request = run_request(16, 2, 5);

  const obs::json_value first = svc.handle(request);
  ASSERT_TRUE(first.find("ok")->as_bool()) << first.dump();
  EXPECT_EQ(first.find("type")->as_string(), "result");
  EXPECT_FALSE(first.find("cached")->as_bool());
  ASSERT_NE(first.find("result"), nullptr);
  EXPECT_EQ(first.find("result")->find("samples")->size(), 2u);

  const obs::json_value replay = svc.handle(request);
  ASSERT_TRUE(replay.find("ok")->as_bool());
  EXPECT_TRUE(replay.find("cached")->as_bool());
  EXPECT_EQ(replay.find("fingerprint")->as_string(),
            first.find("fingerprint")->as_string());
  EXPECT_EQ(replay.find("result")->dump(), first.find("result")->dump());
  EXPECT_EQ(svc.cache().hits(), 1u);
  EXPECT_EQ(svc.cache().misses(), 1u);
}

TEST(ServeService, FingerprintIgnoresIrrelevantFields) {
  // Same logical request, different field order plus an h the optimal
  // protocol ignores: one miss, one hit.
  service svc(fast_options());
  const obs::json_value first = svc.handle_line(
      R"({"type":"run","protocol":"optimal","n":16,"trials":2,"seed":5})");
  ASSERT_TRUE(first.find("ok")->as_bool()) << first.dump();
  const obs::json_value second = svc.handle_line(
      R"({"type":"run","seed":5,"trials":2,"h":9,"n":16,"protocol":"optimal"})");
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_TRUE(second.find("cached")->as_bool());
  EXPECT_EQ(second.find("fingerprint")->as_string(),
            first.find("fingerprint")->as_string());
}

TEST(ServeService, NoCacheBypassesBothLookupAndInsert) {
  service svc(fast_options());
  obs::json_value request = run_request(16, 1, 3);
  request["no_cache"] = true;
  const obs::json_value first = svc.handle(request);
  const obs::json_value second = svc.handle(request);
  ASSERT_TRUE(first.find("ok")->as_bool());
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_FALSE(first.find("cached")->as_bool());
  EXPECT_FALSE(second.find("cached")->as_bool());
  EXPECT_EQ(svc.cache().size(), 0u);
  EXPECT_EQ(svc.cache().hits(), 0u);
}

TEST(ServeService, SaturatedResponseCarriesRetryAfter) {
  service_options options = fast_options();
  options.max_queue_depth = 0;  // every admission is shed
  options.retry_after = std::chrono::milliseconds{125};
  service svc(options);
  const obs::json_value response = svc.handle(run_request(16, 1, 1));
  EXPECT_EQ(response.find("error")->as_string(), "saturated");
  EXPECT_FALSE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("retry_after_ms")->as_int64(), 125);
}

TEST(ServeService, DeadlineExceededOnSlowRun) {
  service svc(fast_options());
  // Enough trials that the 1ms deadline fires long before completion; the
  // cancellation poll between trials turns it into a deadline error.
  obs::json_value request = run_request(64, 200000, 9);
  request["deadline_ms"] = 1;
  const obs::json_value response = svc.handle(request);
  EXPECT_FALSE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("error")->as_string(), "deadline_exceeded");
  // A failed run must not poison the cache.
  EXPECT_EQ(svc.cache().size(), 0u);
}

TEST(ServeService, ProgressEventsStreamDuringRun) {
  service_options options = fast_options();
  options.poll_interval = std::chrono::milliseconds{1};
  service svc(options);
  obs::json_value request = run_request(64, 400, 11);
  request["progress"] = true;
  std::vector<std::string> kinds;
  const obs::json_value response =
      svc.handle(request, [&](const obs::json_value& event) {
        kinds.push_back(event.find("type")->as_string());
      });
  ASSERT_TRUE(response.find("ok")->as_bool()) << response.dump();
  ASSERT_FALSE(kinds.empty());
  for (const std::string& kind : kinds) EXPECT_EQ(kind, "progress");
}

TEST(ServeService, ShutdownDrainsAndClosesAdmission) {
  service svc(fast_options());
  ASSERT_TRUE(svc.handle(run_request(16, 1, 2)).find("ok")->as_bool());
  const obs::json_value response =
      svc.handle_line(R"({"type":"shutdown","id":1})");
  EXPECT_EQ(response.find("type")->as_string(), "shutdown");
  EXPECT_TRUE(response.find("draining")->as_bool());
  EXPECT_TRUE(svc.shutdown_requested());
  svc.drain();
  // After the drain the queue sheds everything...
  const obs::json_value rejected = svc.handle(run_request(16, 1, 99));
  EXPECT_EQ(rejected.find("error")->as_string(), "saturated");
  // ...but cached results still serve.
  const obs::json_value cached = svc.handle(run_request(16, 1, 2));
  EXPECT_TRUE(cached.find("ok")->as_bool());
  EXPECT_TRUE(cached.find("cached")->as_bool());
}

TEST(ServeService, StatsDocumentTracksQueueJobsAndCache) {
  service svc(fast_options());
  const obs::json_value fresh = svc.stats_document();
  EXPECT_EQ(fresh.find("queue")->find("depth")->as_int64(), 0);
  EXPECT_EQ(fresh.find("queue")->find("capacity")->as_int64(), 8);
  EXPECT_EQ(fresh.find("queue")->find("worker_pool")->as_int64(), 2);
  EXPECT_EQ(fresh.find("jobs")->find("submitted")->as_int64(), 0);
  EXPECT_EQ(fresh.find("cache")->find("hit_rate")->as_double(), 0.0);

  const obs::json_value request = run_request(16, 2, 5);
  ASSERT_TRUE(svc.handle(request).find("ok")->as_bool());
  ASSERT_TRUE(svc.handle(request).find("ok")->as_bool());  // cache hit

  const obs::json_value stats = svc.stats_document();
  EXPECT_EQ(stats.find("jobs")->find("submitted")->as_int64(), 1);
  EXPECT_EQ(stats.find("jobs")->find("completed")->as_int64(), 1);
  EXPECT_EQ(stats.find("cache")->find("hits")->as_int64(), 1);
  EXPECT_EQ(stats.find("cache")->find("misses")->as_int64(), 1);
  EXPECT_DOUBLE_EQ(stats.find("cache")->find("hit_rate")->as_double(), 0.5);
  EXPECT_EQ(stats.find("job_seconds")->find("count")->as_int64(), 1);
  const obs::json_value* latency = stats.find("job_seconds");
  EXPECT_GE(latency->find("p99")->as_double(), latency->find("p50")->as_double());
}

// -- ServeConcurrency: re-run under TSan via the concurrency_suites
// target (tests/CMakeLists.txt extends the gtest_filter with this suite).

TEST(ServeConcurrency, ManyClientsShareOneService) {
  service_options options = fast_options();
  options.workers = 4;
  options.max_queue_depth = 64;
  service svc(options);

  constexpr int k_clients = 8;
  constexpr int k_requests = 4;
  std::atomic<int> ok_count{0};
  std::atomic<int> cached_count{0};
  std::vector<std::thread> clients;
  clients.reserve(k_clients);
  for (int c = 0; c < k_clients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < k_requests; ++r) {
        // Half the requests share one spec (cache contention), half are
        // unique per client (queue contention).
        const std::uint64_t seed =
            (r % 2 == 0) ? 1234 : 1000 + static_cast<std::uint64_t>(c);
        const obs::json_value response = svc.handle(run_request(16, 1, seed));
        if (response.find("ok")->as_bool()) {
          ok_count.fetch_add(1);
          if (response.find("cached")->as_bool()) cached_count.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(ok_count.load(), k_clients * k_requests);
  // The shared spec ran at most a handful of times; everyone else hit.
  EXPECT_GT(cached_count.load(), 0);
  EXPECT_EQ(svc.cache().hits() + svc.cache().misses(),
            static_cast<std::uint64_t>(k_clients * k_requests));
}

TEST(ServeConcurrency, StatsAndPingsInterleaveWithRuns) {
  service svc(fast_options());
  std::atomic<bool> stop{false};
  std::thread prober([&] {
    while (!stop.load()) {
      const obs::json_value stats = svc.stats_document();
      ASSERT_NE(stats.find("queue"), nullptr);
      const obs::json_value pong = svc.handle_line(R"({"type":"ping"})");
      ASSERT_EQ(pong.find("type")->as_string(), "pong");
    }
  });
  std::vector<std::thread> runners;
  for (int c = 0; c < 4; ++c) {
    runners.emplace_back([&, c] {
      for (int r = 0; r < 3; ++r) {
        const obs::json_value response = svc.handle(
            run_request(16, 1, 2000 + static_cast<std::uint64_t>(c)));
        EXPECT_TRUE(response.find("ok")->as_bool());
      }
    });
  }
  for (std::thread& t : runners) t.join();
  stop.store(true);
  prober.join();
}

TEST(ServeConcurrency, CacheSurvivesParallelGetPut) {
  result_cache cache(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 400; ++i) {
        std::string key = "k";
        key += std::to_string((t * 31 + i) % 32);
        if (i % 3 == 0) {
          cache.put(key, small_doc(i));
        } else if (const auto hit = cache.get(key)) {
          EXPECT_TRUE(hit->find("value")->is_number());
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(cache.size(), 8u);
  // 400 iterations per thread, every third a put: 266 gets each.
  EXPECT_EQ(cache.hits() + cache.misses(), 8u * 266u);
}

}  // namespace
}  // namespace ssr::serve
