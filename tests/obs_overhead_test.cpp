// Overhead guard for the engine instrumentation (ISSUE 2 acceptance: the
// disabled path must not tax the hot loop).  With no counter sink attached
// the per-interaction cost of instrumentation is one predictable
// `if (counters_)` branch; this test times the direct engine's hot loop
// detached and attached and checks that
//
//   * attaching counters costs at most a small constant factor, and
//   * the detached path is within noise of itself across repetitions
//     (sanity that the measurement is stable enough to mean anything).
//
// Timing assertions are deliberately generous (min-of-repetitions against a
// 2x bound) so the test stays deterministic on loaded CI machines; the
// per-interaction work here is an RNG draw plus a transition, both of which
// dwarf a counter increment.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "obs/engine_counters.hpp"
#include "obs/trace.hpp"
#include "pp/convergence.hpp"
#include "pp/engine.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"

namespace ssr {
namespace {

double seconds_for_run(obs::engine_counters* counters) {
  const std::uint32_t n = 256;
  optimal_silent_ssr p(n);
  rng_t rng(17);
  auto init = adversarial_configuration(
      p, optimal_silent_scenario::uniform_random, rng);
  direct_engine<optimal_silent_ssr> eng(p, std::move(init), 18);
  eng.attach_counters(counters);
  const auto start = std::chrono::steady_clock::now();
  eng.run(400'000, [](const agent_pair&) {},
          [](const agent_pair&, bool) { return false; });
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double min_of(int repetitions, obs::engine_counters* counters) {
  double best = 1e9;
  for (int r = 0; r < repetitions; ++r)
    best = std::min(best, seconds_for_run(counters));
  return best;
}

TEST(ObsOverhead, DisabledCountersStayCheap) {
  // Warm-up: page in the code and let the clock settle.
  seconds_for_run(nullptr);

  const double detached = min_of(5, nullptr);
  obs::engine_counters counters;
  const double attached = min_of(5, &counters);

  ASSERT_GT(detached, 0.0);
  EXPECT_GT(counters.interactions_executed, 0u);
  // Generous bound: a counter increment per interaction must not double
  // the cost of an RNG draw + transition + hook dispatch.
  EXPECT_LT(attached, detached * 2.0)
      << "attached=" << attached << "s detached=" << detached << "s";
  const double detached_again = min_of(3, nullptr);
  EXPECT_LT(detached_again, detached * 2.0)
      << "measurement too noisy to interpret";
}

// The request-scoped variant of the same contract: a measurement with
// convergence_options::trace unset must pay only the single
// per-measurement pointer test -- the null tracer's hooks inline to
// nothing, so back-to-back detached timings agree within noise.  An
// *attached* sink is allowed real per-interaction work (the phase
// observer recomputes both agents' phases and maintains occupancy on
// every surfaced interaction, ~2x in practice); the bound below only
// pins that it stays a small constant factor rather than scaling with
// the event volume (sampling keeps the sink itself out of the picture).
double seconds_for_convergence(obs::trace_sink* trace) {
  // Several seeds per timing sample: one n=256 convergence is ~1ms,
  // too short for a stable min-of-repetitions on a loaded CI machine.
  const std::uint32_t n = 256;
  optimal_silent_ssr p(n);
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t seed = 24; seed < 32; ++seed) {
    rng_t rng(seed);
    auto init = adversarial_configuration(
        p, optimal_silent_scenario::uniform_random, rng);
    convergence_options opt;
    opt.trace = trace;
    measure_convergence(p, std::move(init), seed, opt);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double min_of_convergence(int repetitions, obs::trace_sink* trace) {
  double best = 1e9;
  for (int r = 0; r < repetitions; ++r)
    best = std::min(best, seconds_for_convergence(trace));
  return best;
}

TEST(ObsOverhead, DetachedRequestTraceStaysCheap) {
  seconds_for_convergence(nullptr);  // warm-up

  const double detached = min_of_convergence(5, nullptr);
  // Heavy sampling: the sink sees every offer but keeps few events, so
  // this times the hook dispatch itself, not the event buffering.
  obs::trace_sink sink(obs::trace_options{.sample_every = 1u << 20});
  const double attached = min_of_convergence(5, &sink);

  ASSERT_GT(detached, 0.0);
  EXPECT_GT(sink.offered(), 0u);
  EXPECT_LT(attached, detached * 4.0)
      << "attached=" << attached << "s detached=" << detached << "s";
  const double detached_again = min_of_convergence(3, nullptr);
  EXPECT_LT(detached_again, detached * 2.0)
      << "measurement too noisy to interpret";
}

}  // namespace
}  // namespace ssr
