// Run-bundle observability: the ssr.scenario parser, the bundle writer's
// deterministic contract (same (scenario, seed) => byte-identical run.json
// and manifest digests), golden summary/manifest fixtures, manifest
// verification, the baseline compare gates, and the serve daemon's
// scenario payloads.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/bundle.hpp"
#include "obs/journal.hpp"
#include "obs/scenario.hpp"
#include "serve/runner.hpp"
#include "serve/service.hpp"
#include "util/request_spec.hpp"

namespace ssr {
namespace {

namespace fs = std::filesystem;

std::string data_path(const std::string& name) {
  return std::string(SSR_TEST_DATA_DIR) + "/" + name;
}

std::string example_path(const std::string& name) {
  return std::string(SSR_SCENARIO_EXAMPLES_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << path;
  out << content;
}

/// The small fixed scenario behind the determinism and golden tests.
obs::scenario_doc test_scenario() {
  std::vector<util::spec_error> errors;
  const std::optional<obs::scenario_doc> doc = obs::parse_scenario_text(
      R"({"schema":"ssr.scenario","schema_version":1,
          "name":"golden_optimal","description":"golden fixture scenario",
          "protocol":"optimal","scenario":"no_leader","n":16,
          "trials":3,"seed":5,"max_time":1000000,"engine":"direct"})",
      &errors);
  EXPECT_TRUE(doc.has_value()) << util::render_errors(errors);
  return *doc;
}

/// Executes a scenario the way `ssr_cli run` does (no journal).
obs::bundle_result run_and_bundle(const obs::scenario_doc& scenario,
                                  const std::string& dir,
                                  obs::bundle_provenance provenance) {
  obs::metrics_registry registry;
  obs::engine_counters counters;
  const std::shared_ptr<const obs::json_value> result = serve::run_simulation(
      scenario.spec, nullptr, &registry, nullptr, &counters);
  return obs::write_run_bundle(dir, scenario, *result, counters, {},
                               provenance);
}

TEST(Scenario, ParsesAndFingerprintsLikeTheSharedBuilder) {
  const obs::scenario_doc doc = test_scenario();
  EXPECT_EQ(doc.name, "golden_optimal");
  EXPECT_EQ(doc.spec.protocol, "optimal");
  EXPECT_EQ(doc.spec.scenario, "no_leader");
  EXPECT_EQ(doc.spec.n, 16u);
  EXPECT_EQ(doc.spec.trials, 3u);
  EXPECT_EQ(doc.spec.canonical(),
            "protocol=optimal scenario=no_leader n=16 trials=3 seed=5 "
            "max_time=1000000 engine=direct");
}

TEST(Scenario, CanonicalizationIsFieldOrderInsensitive) {
  std::vector<util::spec_error> errors;
  const auto a = obs::parse_scenario_text(
      R"({"name":"x","protocol":"optimal","scenario":"no_leader","n":16,
          "trials":3,"seed":5})",
      &errors);
  ASSERT_TRUE(a.has_value()) << util::render_errors(errors);
  const auto b = obs::parse_scenario_text(
      R"({"seed":5,"n":16,"scenario":"no_leader","trials":3,
          "protocol":"optimal","name":"x"})",
      &errors);
  ASSERT_TRUE(b.has_value()) << util::render_errors(errors);
  EXPECT_EQ(obs::scenario_to_json(*a).dump(2),
            obs::scenario_to_json(*b).dump(2));
}

TEST(Scenario, FieldErrorsMatchGolden) {
  // A typo'd protocol, a typo'd field, a missing name, and a malformed
  // trace block, all reported field-by-field with nearest-name
  // suggestions -- the same diagnostics the CLI flags and the serve wire
  // produce for the same mistakes.
  std::vector<util::spec_error> errors;
  const auto doc = obs::parse_scenario_text(
      R"({"schema":"ssr.scenario","schema_version":1,
          "protocol":"optiml","scenaro":"no_leader","n":16,
          "trace":{"sample_evry":2}})",
      &errors);
  EXPECT_FALSE(doc.has_value());
  std::ostringstream rendered;
  for (const util::spec_error& e : errors)
    rendered << e.field << ": " << e.message << "\n";
  const std::string golden_path = data_path("bundle/scenario_errors_golden.txt");
  EXPECT_EQ(rendered.str(), slurp(golden_path))
      << "regenerate with the printed text if the diagnostics changed";
}

TEST(Scenario, RejectsWrongSchemaAndVersion) {
  std::vector<util::spec_error> errors;
  EXPECT_FALSE(obs::parse_scenario_text(
                   R"({"schema":"ssr.nope","name":"x","protocol":"optimal",
                       "n":16})",
                   &errors)
                   .has_value());
  bool saw_schema = false;
  for (const util::spec_error& e : errors) saw_schema |= e.field == "schema";
  EXPECT_TRUE(saw_schema);
  EXPECT_FALSE(obs::parse_scenario_text(
                   R"({"schema":"ssr.scenario","schema_version":2,
                       "name":"x","protocol":"optimal","n":16})",
                   &errors)
                   .has_value());
  bool saw_version = false;
  for (const util::spec_error& e : errors)
    saw_version |= e.field == "schema_version";
  EXPECT_TRUE(saw_version);
}

TEST(Bundle, SameScenarioAndSeedIsByteIdentical) {
  const obs::scenario_doc scenario = test_scenario();
  const std::string dir_a = testing::TempDir() + "bundle_det_a";
  const std::string dir_b = testing::TempDir() + "bundle_det_b";
  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
  // Different provenance on purpose: run.json must not absorb it.
  const obs::bundle_result a =
      run_and_bundle(scenario, dir_a, {"revA", 1111});
  const obs::bundle_result b =
      run_and_bundle(scenario, dir_b, {"revB", 2222});
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(slurp(dir_a + "/run.json"), slurp(dir_b + "/run.json"));
  EXPECT_EQ(slurp(dir_a + "/scenario.json"), slurp(dir_b + "/scenario.json"));
  EXPECT_EQ(slurp(dir_a + "/summary.md"), slurp(dir_b + "/summary.md"));

  // The manifests differ only in provenance: every per-file sha256 of the
  // deterministic files must match.
  std::string error;
  const auto manifest_a = obs::load_json_file(a.manifest_path, &error);
  const auto manifest_b = obs::load_json_file(b.manifest_path, &error);
  ASSERT_TRUE(manifest_a.has_value() && manifest_b.has_value()) << error;
  const obs::json_value* files_a = manifest_a->find("files");
  const obs::json_value* files_b = manifest_b->find("files");
  ASSERT_NE(files_a, nullptr);
  ASSERT_NE(files_b, nullptr);
  ASSERT_EQ(files_a->size(), files_b->size());
  for (std::size_t i = 0; i < files_a->size(); ++i) {
    const obs::json_value& fa = files_a->items()[i];
    const obs::json_value& fb = files_b->items()[i];
    EXPECT_EQ(fa.find("path")->as_string(), fb.find("path")->as_string());
    EXPECT_EQ(fa.find("sha256")->as_string(), fb.find("sha256")->as_string())
        << "digest drift in " << fa.find("path")->as_string();
  }
}

TEST(Bundle, SummaryAndManifestMatchGolden) {
  const obs::scenario_doc scenario = test_scenario();
  const std::string dir = testing::TempDir() + "bundle_golden";
  fs::remove_all(dir);
  // Pinned provenance so the manifest is reproducible byte for byte.
  const obs::bundle_result bundle =
      run_and_bundle(scenario, dir, {"testrev", 1754000000000});
  ASSERT_TRUE(bundle.ok) << bundle.error;
  EXPECT_EQ(slurp(dir + "/summary.md"),
            slurp(data_path("bundle/summary_golden.md")))
      << "golden lives at tests/data/bundle/summary_golden.md; source: "
      << dir + "/summary.md";
  EXPECT_EQ(slurp(dir + "/bundle_manifest.json"),
            slurp(data_path("bundle/bundle_manifest_golden.json")))
      << "golden lives at tests/data/bundle/bundle_manifest_golden.json; "
         "source: "
      << dir + "/bundle_manifest.json";
}

TEST(Bundle, VerifyPassesCleanAndFlagsTampering) {
  const obs::scenario_doc scenario = test_scenario();
  const std::string dir = testing::TempDir() + "bundle_verify";
  fs::remove_all(dir);
  ASSERT_TRUE(run_and_bundle(scenario, dir, {"rev", 1}).ok);
  const obs::manifest_check clean = obs::verify_bundle(dir);
  EXPECT_TRUE(clean.ok()) << clean.problems.front();
  EXPECT_EQ(clean.files_checked, 3u);  // scenario.json, run.json, summary.md

  spit(dir + "/run.json", "{\"tampered\":true}\n");
  const obs::manifest_check tampered = obs::verify_bundle(dir);
  ASSERT_FALSE(tampered.ok());
  bool names_run_json = false;
  for (const std::string& problem : tampered.problems)
    names_run_json |= problem.find("run.json") != std::string::npos;
  EXPECT_TRUE(names_run_json);

  fs::remove(dir + "/summary.md");
  const obs::manifest_check missing = obs::verify_bundle(dir);
  ASSERT_FALSE(missing.ok());
  bool names_missing = false;
  for (const std::string& problem : missing.problems)
    names_missing |= problem.find("summary.md") != std::string::npos &&
                     problem.find("missing") != std::string::npos;
  EXPECT_TRUE(names_missing);
}

TEST(Bundle, CleanRerunComparesWithoutRegression) {
  const obs::scenario_doc scenario = test_scenario();
  const std::string dir = testing::TempDir() + "bundle_cmp";
  fs::remove_all(dir);
  const obs::bundle_result bundle = run_and_bundle(scenario, dir, {"rev", 1});
  ASSERT_TRUE(bundle.ok);
  const obs::json_value baseline = obs::baseline_document(
      bundle.run_doc, {"rev", 1});
  const obs::bundle_comparison comparison =
      obs::compare_against_baseline(bundle.run_doc, baseline);
  ASSERT_TRUE(comparison.ok) << comparison.error;
  // Sample row + engine-work value row (the direct engine executed real
  // interactions), identical on both sides.
  EXPECT_EQ(comparison.compared, 2);
  EXPECT_EQ(comparison.regressions, 0);
}

TEST(Bundle, CompareRefusesFingerprintMismatch) {
  const obs::scenario_doc scenario = test_scenario();
  const std::string dir = testing::TempDir() + "bundle_fp";
  fs::remove_all(dir);
  const obs::bundle_result bundle = run_and_bundle(scenario, dir, {"rev", 1});
  ASSERT_TRUE(bundle.ok);
  obs::json_value baseline = obs::baseline_document(bundle.run_doc);
  baseline["fingerprint"] = "protocol=optimal scenario=no_leader n=999";
  const obs::bundle_comparison comparison =
      obs::compare_against_baseline(bundle.run_doc, baseline);
  EXPECT_FALSE(comparison.ok);
  EXPECT_NE(comparison.error.find("fingerprint mismatch"), std::string::npos);
}

TEST(Bundle, RegressedFixtureFiresTheGate) {
  // The doctored baseline (tests/data/bundle/regressed_baseline.json)
  // claims the CI example scenario once ran ~10x faster; comparing a real
  // run against it must flag both gates.  First pin the fixture to the
  // example scenario so neither can drift silently.
  std::vector<util::spec_error> errors;
  const auto scenario = obs::parse_scenario_text(
      slurp(example_path("optimal_no_leader.json")), &errors);
  ASSERT_TRUE(scenario.has_value()) << util::render_errors(errors);
  std::string error;
  const auto baseline =
      obs::load_json_file(data_path("bundle/regressed_baseline.json"), &error);
  ASSERT_TRUE(baseline.has_value()) << error;
  EXPECT_EQ(baseline->find("fingerprint")->as_string(),
            scenario->spec.canonical())
      << "regressed_baseline.json no longer matches the example scenario";

  obs::metrics_registry registry;
  obs::engine_counters counters;
  const auto result = serve::run_simulation(scenario->spec, nullptr,
                                            &registry, nullptr, &counters);
  const obs::json_value run_doc =
      obs::run_document(*scenario, *result, counters);
  const obs::bundle_comparison comparison =
      obs::compare_against_baseline(run_doc, *baseline);
  ASSERT_TRUE(comparison.ok) << comparison.error;
  EXPECT_GE(comparison.regressions, 1);
}

TEST(ObsJournal, DefaultSchemaIsGeneralizedEvents) {
  std::ostringstream os;
  obs::journal journal{obs::journal_options{}};
  journal.open_stream(&os);
  obs::json_value fields = obs::json_value::object();
  fields["request_id"] = "job-1";
  journal.emit("admit", fields);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"event\":\"journal_header\""), std::string::npos);
  EXPECT_NE(text.find("\"schema\":\"ssr.events\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"admit\""), std::string::npos);
}

TEST(ServeScenario, PayloadRunsAndPersistsABundle) {
  const std::string dir = testing::TempDir() + "serve_scenario_bundle";
  fs::remove_all(dir);
  serve::service_options options;
  options.workers = 1;
  options.telemetry_dir = dir;
  serve::service service(options);
  const obs::json_value response = service.handle_line(
      R"({"type":"run","id":1,"scenario":{
            "schema":"ssr.scenario","schema_version":1,
            "name":"wire_scenario","protocol":"optimal",
            "scenario":"no_leader","n":16,"trials":2,"seed":9,
            "engine":"direct","trace":true}})");
  ASSERT_NE(response.find("ok"), nullptr);
  ASSERT_TRUE(response.find("ok")->as_bool())
      << response.dump(2);
  const obs::json_value* bundle = response.find("bundle");
  ASSERT_NE(bundle, nullptr);
  EXPECT_TRUE(bundle->find("ok")->as_bool());
  const std::string bundle_dir = bundle->find("dir")->as_string();
  const obs::manifest_check check = obs::verify_bundle(bundle_dir);
  EXPECT_TRUE(check.ok()) << check.problems.front();
  EXPECT_TRUE(fs::exists(bundle_dir + "/trace.jsonl"));

  // Same payload again: scenario runs bypass the cache lookup (the bundle
  // must observe an execution), so the replay is uncached too.
  const obs::json_value replay = service.handle_line(
      R"({"type":"run","id":2,"scenario":{
            "schema":"ssr.scenario","schema_version":1,
            "name":"wire_scenario","protocol":"optimal",
            "scenario":"no_leader","n":16,"trials":2,"seed":9,
            "engine":"direct","trace":true}})");
  ASSERT_TRUE(replay.find("ok")->as_bool());
  EXPECT_FALSE(replay.find("cached")->as_bool());
}

TEST(ServeScenario, InvalidPayloadGetsPrefixedFieldErrors) {
  serve::service service({.workers = 1});
  const obs::json_value response = service.handle_line(
      R"({"type":"run","scenario":{"protocol":"optiml","n":16},
          "progess":true})");
  ASSERT_NE(response.find("error"), nullptr);
  EXPECT_EQ(response.find("error")->as_string(), "invalid_request");
  const obs::json_value* field_errors = response.find("field_errors");
  ASSERT_NE(field_errors, nullptr);
  bool saw_protocol = false, saw_name = false, saw_sibling = false;
  for (const obs::json_value& item : field_errors->items()) {
    const std::string& field = item.find("field")->as_string();
    if (field == "scenario.protocol") {
      saw_protocol = true;
      EXPECT_NE(item.find("message")->as_string().find("did you mean"),
                std::string::npos);
    }
    if (field == "scenario.name") saw_name = true;
    if (field == "progess") {
      saw_sibling = true;
      EXPECT_NE(item.find("message")->as_string().find("progress"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(saw_protocol);
  EXPECT_TRUE(saw_name);
  EXPECT_TRUE(saw_sibling);
}

}  // namespace
}  // namespace ssr
