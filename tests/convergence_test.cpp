#include "pp/convergence.hpp"

#include <gtest/gtest.h>

#include "protocols/silent_n_state.hpp"

namespace ssr {
namespace {

TEST(RankTracker, DetectsPermutation) {
  rank_tracker t(3);
  t.add(1);
  t.add(2);
  t.add(3);
  EXPECT_TRUE(t.correct());
}

TEST(RankTracker, DuplicateBreaksCorrectness) {
  rank_tracker t(3);
  t.add(1);
  t.add(2);
  t.add(2);
  EXPECT_FALSE(t.correct());
  t.update(2, 3);
  EXPECT_TRUE(t.correct());
}

TEST(RankTracker, ZeroMeansUnranked) {
  rank_tracker t(2);
  t.add(0);
  t.add(1);
  EXPECT_FALSE(t.correct());
  t.update(0, 2);
  EXPECT_TRUE(t.correct());
}

TEST(RankTracker, OutOfRangeRanksArePooled) {
  rank_tracker t(2);
  t.add(7);  // clamped to "no rank"
  t.add(1);
  EXPECT_FALSE(t.correct());
  t.update(7, 2);
  EXPECT_TRUE(t.correct());
}

TEST(RankTracker, NoOpUpdateKeepsState) {
  rank_tracker t(2);
  t.add(1);
  t.add(2);
  t.update(1, 1);
  EXPECT_TRUE(t.correct());
}

TEST(MeasureConvergence, BaselineFromAllZero) {
  silent_n_state_ssr protocol(8);
  std::vector<silent_n_state_ssr::agent_state> init(8);
  const convergence_result r = measure_convergence(protocol, init, 42);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.convergence_time, 0.0);
  EXPECT_EQ(r.correctness_losses, 0u);
}

TEST(MeasureConvergence, AlreadyCorrectConvergesImmediately) {
  silent_n_state_ssr protocol(8);
  std::vector<silent_n_state_ssr::agent_state> init(8);
  for (std::uint32_t i = 0; i < 8; ++i) init[i].rank = i;
  const convergence_result r = measure_convergence(protocol, init, 42);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.interactions, 0u);
}

TEST(MeasureConvergence, TimeCapFails) {
  silent_n_state_ssr protocol(16);
  std::vector<silent_n_state_ssr::agent_state> init(16);
  convergence_options opt;
  opt.max_parallel_time = 0.5;  // far below Theta(n^2)
  const convergence_result r = measure_convergence(protocol, init, 42, opt);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.interactions, 8u);  // 0.5 * 16
}

TEST(MeasureConvergence, ConfirmationWindowExtendsRun) {
  silent_n_state_ssr protocol(8);
  std::vector<silent_n_state_ssr::agent_state> init(8);
  convergence_options opt;
  opt.confirm_parallel_time = 10.0;
  const convergence_result r = measure_convergence(protocol, init, 7, opt);
  EXPECT_TRUE(r.converged);
  // The baseline is silent once correct, so the confirmation window adds
  // interactions but never a correctness loss.
  EXPECT_EQ(r.correctness_losses, 0u);
  EXPECT_GE(static_cast<double>(r.interactions),
            r.convergence_time * 8 + 10.0 * 8 - 1);
}

TEST(MeasureConvergence, FinalConfigurationIsReturned) {
  silent_n_state_ssr protocol(8);
  std::vector<silent_n_state_ssr::agent_state> init(8);
  std::vector<silent_n_state_ssr::agent_state> final_config;
  const convergence_result r =
      measure_convergence(protocol, init, 42, {}, &final_config);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(final_config.size(), 8u);
  EXPECT_TRUE(is_valid_ranking(protocol, final_config));
}

TEST(MeasureConvergence, DeterministicForSameSeed) {
  silent_n_state_ssr protocol(12);
  std::vector<silent_n_state_ssr::agent_state> init(12);
  const convergence_result a = measure_convergence(protocol, init, 1234);
  const convergence_result b = measure_convergence(protocol, init, 1234);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_DOUBLE_EQ(a.convergence_time, b.convergence_time);
}

}  // namespace
}  // namespace ssr
