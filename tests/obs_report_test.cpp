#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace ssr::obs {
namespace {

/// A fully deterministic report: every volatile field (git_rev, timestamps,
/// wall time) pinned, so its dump(2) is byte-stable and can be compared
/// against the checked-in golden file.
bench_report make_fixture_report() {
  bench_report r;
  r.experiment = "E0";
  r.title = "golden fixture";
  r.binary = "obs_report_test";
  r.engine = "batched";
  r.git_rev = "0000000000000000000000000000000000000000";
  r.generated_unix = 1754300000;
  r.argv = {"--engine=batched", "--trials=4"};
  r.wall_time_seconds = 1.5;
  r.add_samples("stabilization", "optimal_silent", 64,
                "scenario=uniform_random", 4, 1042, "parallel_time",
                {10.0, 12.0, 11.0, 13.0});
  report_row& holding = r.add_samples("holding", "loose", 32, "", 4, 7,
                                      "parallel_time", {5.0, 6.0, 5.5, 7.0});
  holding.lower_is_better = false;
  r.add_value("throughput", "interactions_per_second", "silent_n_state",
              1024, "", 2.5e8, "1/s", /*higher_is_better=*/true);
  r.metrics = json_value::object();
  r.metrics["trials.completed"] = 8;
  return r;
}

std::string golden_path() {
  return std::string(SSR_TEST_DATA_DIR) + "/report_golden.json";
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is) << "cannot open " << path;
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// The serialized schema is a contract consumed by report_diff and external
// scripts; any change must be deliberate.  Regenerate the golden file with
//   SSR_UPDATE_GOLDEN=1 ./ssr_tests --gtest_filter=ObsReport.GoldenFile
// and review the diff.
TEST(ObsReport, GoldenFile) {
  const std::string dumped = make_fixture_report().to_json().dump(2) + "\n";
  if (std::getenv("SSR_UPDATE_GOLDEN") != nullptr) {
    std::ofstream os(golden_path());
    ASSERT_TRUE(os) << golden_path();
    os << dumped;
    GTEST_SKIP() << "golden file regenerated";
  }
  EXPECT_EQ(dumped, slurp(golden_path()));
}

TEST(ObsReport, GoldenFileIsSchemaValid) {
  const auto parsed = json_value::parse(slurp(golden_path()));
  ASSERT_TRUE(parsed.has_value());
  const auto problems = validate_report_json(*parsed);
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
}

TEST(ObsReport, RoundTripsThroughJson) {
  const bench_report r = make_fixture_report();
  std::string error;
  const auto back = bench_report::from_json(r.to_json(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->experiment, r.experiment);
  EXPECT_EQ(back->engine, r.engine);
  EXPECT_EQ(back->argv, r.argv);
  ASSERT_EQ(back->rows.size(), r.rows.size());
  EXPECT_EQ(back->rows[0].samples, r.rows[0].samples);
  EXPECT_EQ(back->rows[0].seed, r.rows[0].seed);
  EXPECT_TRUE(back->rows[0].lower_is_better);
  EXPECT_FALSE(back->rows[1].lower_is_better);
  EXPECT_EQ(back->rows[2].kind, report_row::kind_t::value);
  EXPECT_DOUBLE_EQ(back->rows[2].value, r.rows[2].value);
  EXPECT_FALSE(back->rows[2].lower_is_better);
  EXPECT_TRUE(back->to_json() == r.to_json());
}

TEST(ObsReport, RowKeysJoinAcrossReports) {
  const bench_report r = make_fixture_report();
  EXPECT_EQ(r.rows[0].key(),
            "stabilization|optimal_silent|64|scenario=uniform_random");
  EXPECT_NE(r.rows[0].key(), r.rows[1].key());
  // Value rows disambiguate by metric as well: two rates for the same
  // (section, protocol, n) must not collide.
  EXPECT_NE(r.rows[2].key(),
            bench_report(r).add_value("throughput", "other_metric",
                                      "silent_n_state", 1024, "", 1.0, "1/s")
                .key());
}

TEST(ObsReport, ValidatorRejectsBrokenDocuments) {
  const json_value good = make_fixture_report().to_json();
  EXPECT_TRUE(validate_report_json(good).empty());

  json_value wrong_version = good;
  wrong_version["schema_version"] = 99;
  EXPECT_FALSE(validate_report_json(wrong_version).empty());

  json_value not_object = json_value::array();
  EXPECT_FALSE(validate_report_json(not_object).empty());

  json_value no_rows = good;
  no_rows["rows"] = json_value(1);
  EXPECT_FALSE(validate_report_json(no_rows).empty());

  // Trials disagreeing with the sample count is a corrupt report.
  json_value bad_trials = good;
  json_value rows = json_value::array();
  json_value row = good.find("rows")->at(0);
  row["trials"] = 999;
  rows.push_back(row);
  bad_trials["rows"] = rows;
  EXPECT_FALSE(validate_report_json(bad_trials).empty());
}

TEST(ObsReport, SchemaVersionFormatsWithoutTrailingZeros) {
  EXPECT_EQ(format_schema_version(1.0), "1");
  EXPECT_EQ(format_schema_version(2.0), "2");
  EXPECT_EQ(format_schema_version(2.1), "2.1");
}

// Writers emit 2.1; v1 and v2 documents from older builds must keep
// validating, anything else must not.  The "profile" block is the one 2.1
// addition, so older versions carrying it are corrupt.
TEST(ObsReport, ValidatorAcceptsEverySupportedSchemaVersion) {
  const json_value good = make_fixture_report().to_json();
  ASSERT_NE(good.find("schema_version"), nullptr);
  EXPECT_DOUBLE_EQ(good.find("schema_version")->as_double(), 2.1);

  // Every fixture row carries samples or a value, so rewinding the version
  // field alone yields a well-formed older document.
  for (const double version : {1.0, 2.0, 2.1}) {
    json_value doc = good;
    doc["schema_version"] = json_value{version};
    EXPECT_TRUE(validate_report_json(doc).empty()) << version;
  }
  for (const double version : {0.0, 2.2, 3.0}) {
    json_value doc = good;
    doc["schema_version"] = json_value{version};
    EXPECT_FALSE(validate_report_json(doc).empty()) << version;
  }
}

TEST(ObsReport, ProfileBlockRequiresSchema21) {
  bench_report r = make_fixture_report();
  json_value profile = json_value::object();
  profile["schema"] = json_value{"ssr.profile"};
  profile["sections"] = json_value::array();
  r.profile = profile;

  const json_value with_profile = r.to_json();
  EXPECT_TRUE(validate_report_json(with_profile).empty());

  json_value downgraded = with_profile;
  downgraded["schema_version"] = json_value{2.0};
  const auto problems = validate_report_json(downgraded);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("profile"), std::string::npos);

  json_value bad_type = with_profile;
  bad_type["profile"] = json_value{"not an object"};
  EXPECT_FALSE(validate_report_json(bad_type).empty());

  // The block is carried opaquely through parse/serialize.
  std::string error;
  const auto back = bench_report::from_json(with_profile, &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_TRUE(back->profile.has_value());
  EXPECT_TRUE(back->to_json() == with_profile);
}

TEST(ObsReport, FromJsonReportsFirstProblem) {
  json_value broken = make_fixture_report().to_json();
  broken["engine"] = json_value::object();
  std::string error;
  EXPECT_FALSE(bench_report::from_json(broken, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ObsReport, ReportFilename) {
  EXPECT_EQ(report_filename("E3"), "BENCH_E3.json");
}

TEST(ObsReport, WriteReportProducesValidFile) {
  const bench_report r = make_fixture_report();
  const std::string path = write_report(r, ::testing::TempDir());
  ASSERT_FALSE(path.empty());
  const auto parsed = json_value::parse(slurp(path));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(validate_report_json(*parsed).empty());
}

}  // namespace
}  // namespace ssr::obs
