#include "protocols/adversary.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ssr {
namespace {

TEST(Adversary, BaselineConfigurationInRange) {
  silent_n_state_ssr p(16);
  rng_t rng(1);
  const auto config = adversarial_configuration(p, rng);
  ASSERT_EQ(config.size(), 16u);
  for (const auto& s : config) EXPECT_LT(s.rank, 16u);
}

TEST(Adversary, OptimalSilentScenariosMatchTheirNames) {
  optimal_silent_ssr p(10);
  rng_t rng(2);

  auto all_rank1 = adversarial_configuration(
      p, optimal_silent_scenario::all_settled_rank_one, rng);
  for (const auto& s : all_rank1) {
    EXPECT_EQ(s.role, optimal_silent_ssr::role_t::settled);
    EXPECT_EQ(s.rank, 1u);
  }

  auto no_leader =
      adversarial_configuration(p, optimal_silent_scenario::no_leader, rng);
  std::set<std::uint32_t> no_leader_ranks;
  for (const auto& s : no_leader) {
    EXPECT_NE(p.rank_of(s), 1u);
    if (s.role == optimal_silent_ssr::role_t::settled)
      no_leader_ranks.insert(s.rank);
  }
  EXPECT_EQ(no_leader_ranks.size(), no_leader.size() - 1);  // no collision

  auto expired = adversarial_configuration(
      p, optimal_silent_scenario::all_unsettled_expired, rng);
  for (const auto& s : expired) {
    EXPECT_EQ(s.role, optimal_silent_ssr::role_t::unsettled);
    EXPECT_EQ(s.errorcount, 0u);
  }

  auto dormant = adversarial_configuration(
      p, optimal_silent_scenario::all_dormant_followers, rng);
  for (const auto& s : dormant) {
    EXPECT_EQ(s.role, optimal_silent_ssr::role_t::resetting);
    EXPECT_FALSE(s.leader);
    EXPECT_EQ(s.reset.resetcount, 0u);
    EXPECT_GE(s.reset.delaytimer, 1u);
  }

  auto dup = adversarial_configuration(
      p, optimal_silent_scenario::duplicated_ranks, rng);
  std::set<std::uint32_t> ranks;
  for (const auto& s : dup) ranks.insert(s.rank);
  EXPECT_EQ(ranks.size(), 5u);  // each rank held twice

  auto valid =
      adversarial_configuration(p, optimal_silent_scenario::valid_ranking, rng);
  EXPECT_TRUE(is_valid_ranking(p, valid));
}

TEST(Adversary, OptimalSilentUniformRandomStaysInStateSpace) {
  optimal_silent_ssr p(12);
  rng_t rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto config = adversarial_configuration(
        p, optimal_silent_scenario::uniform_random, rng);
    for (const auto& s : config) {
      switch (s.role) {
        case optimal_silent_ssr::role_t::settled:
          EXPECT_GE(s.rank, 1u);
          EXPECT_LE(s.rank, 12u);
          EXPECT_LE(s.children, 2u);
          break;
        case optimal_silent_ssr::role_t::unsettled:
          EXPECT_LE(s.errorcount, p.params().e_max);
          break;
        case optimal_silent_ssr::role_t::resetting:
          EXPECT_LE(s.reset.resetcount, p.params().r_max);
          EXPECT_LE(s.reset.delaytimer, p.params().d_max);
          break;
      }
    }
  }
}

TEST(Adversary, SublinearScenariosMatchTheirNames) {
  sublinear_time_ssr p(8, 2u);
  rng_t rng(5);

  auto same = adversarial_configuration(
      p, sublinear_scenario::all_same_name, rng);
  for (const auto& s : same) EXPECT_EQ(s.name, same[0].name);

  auto collision = adversarial_configuration(
      p, sublinear_scenario::single_collision, rng);
  EXPECT_EQ(collision[0].name, collision[1].name);
  {
    std::set<name_t> rest;
    for (std::size_t i = 1; i < collision.size(); ++i)
      rest.insert(collision[i].name);
    EXPECT_EQ(rest.size(), collision.size() - 1);  // others all distinct
    for (const auto& s : collision)
      EXPECT_EQ(s.roster.size(), collision.size() - 1);
  }

  auto ghosts =
      adversarial_configuration(p, sublinear_scenario::ghost_names, rng);
  bool some_padded = false;
  for (const auto& s : ghosts) some_padded |= s.roster.size() > 1;
  EXPECT_TRUE(some_padded);

  auto missing = adversarial_configuration(
      p, sublinear_scenario::missing_own_name, rng);
  for (const auto& s : missing) {
    EXPECT_FALSE(std::binary_search(s.roster.begin(), s.roster.end(), s.name));
  }

  auto valid =
      adversarial_configuration(p, sublinear_scenario::valid_ranking, rng);
  EXPECT_TRUE(is_valid_ranking(p, valid));
  std::set<name_t> names;
  for (const auto& s : valid) names.insert(s.name);
  EXPECT_EQ(names.size(), 8u);
}

TEST(Adversary, SublinearTreesRespectInvariants) {
  sublinear_time_ssr p(8, 3u);
  rng_t rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto config = adversarial_configuration(
        p, sublinear_scenario::planted_histories, rng);
    for (const auto& s : config) {
      EXPECT_TRUE(s.tree.simply_labelled());
      EXPECT_LE(s.tree.depth(), p.params().h);
    }
  }
}

TEST(Adversary, ScenarioNamesRender) {
  EXPECT_EQ(to_string(optimal_silent_scenario::no_leader), "no_leader");
  EXPECT_EQ(to_string(sublinear_scenario::ghost_names), "ghost_names");
}

}  // namespace
}  // namespace ssr
