#include "protocols/propagate_reset.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "pp/random.hpp"
#include "pp/scheduler.hpp"

namespace ssr {
namespace {

// Minimal outer protocol for exercising Propagate-Reset in isolation: agents
// are either computing or resetting, and Reset increments a per-agent
// generation counter so tests can verify the "clean reset" property (every
// agent resets exactly once per global reset).
struct toy_agent {
  bool resetting = false;
  reset_fields reset;
  int resets_executed = 0;
};

struct toy_hooks {
  bool is_resetting(const toy_agent& a) const { return a.resetting; }
  reset_fields& fields(toy_agent& a) const { return a.reset; }
  void enter_resetting(toy_agent& a) const { a.resetting = true; }
  void reset(toy_agent& a) const {
    a.resetting = false;
    a.reset = reset_fields{};
    ++a.resets_executed;
  }
};

reset_params params_for(std::uint32_t n) {
  return {default_r_max(n), default_r_max(n) + 8};
}

TEST(PropagateReset, TriggerSetsFullCountdown) {
  toy_agent a;
  const reset_params p{10, 20};
  trigger_reset(a, p, toy_hooks{});
  EXPECT_TRUE(a.resetting);
  EXPECT_EQ(a.reset.resetcount, 10u);
}

TEST(PropagateReset, PropagatingAgentConvertsComputingPartner) {
  toy_agent a, b;
  const reset_params p{10, 20};
  trigger_reset(a, p, toy_hooks{});
  propagate_reset(a, b, p, toy_hooks{});
  EXPECT_TRUE(b.resetting);
  // Line 5: both move to max(rc_a - 1, rc_b - 1, 0) = 9.
  EXPECT_EQ(a.reset.resetcount, 9u);
  EXPECT_EQ(b.reset.resetcount, 9u);
  EXPECT_EQ(b.resets_executed, 0);
}

TEST(PropagateReset, CountdownDecrementsOnEveryResettingPair) {
  toy_agent a, b;
  const reset_params p{5, 20};
  trigger_reset(a, p, toy_hooks{});
  trigger_reset(b, p, toy_hooks{});
  propagate_reset(a, b, p, toy_hooks{});
  EXPECT_EQ(a.reset.resetcount, 4u);
  EXPECT_EQ(b.reset.resetcount, 4u);
}

TEST(PropagateReset, DormantAgentAwakensOnComputingPartner) {
  toy_agent dormant, computing;
  const reset_params p{5, 20};
  trigger_reset(dormant, p, toy_hooks{});
  dormant.reset.resetcount = 0;  // force dormancy
  dormant.reset.delaytimer = 15;
  propagate_reset(dormant, computing, p, toy_hooks{});
  // Awakening by epidemic: partner is computing.
  EXPECT_FALSE(dormant.resetting);
  EXPECT_EQ(dormant.resets_executed, 1);
  EXPECT_FALSE(computing.resetting);
}

TEST(PropagateReset, DormantPairCountsDownDelay) {
  toy_agent a, b;
  const reset_params p{5, 20};
  for (toy_agent* x : {&a, &b}) {
    trigger_reset(*x, p, toy_hooks{});
    x->reset.resetcount = 0;
    x->reset.delaytimer = 10;
  }
  propagate_reset(a, b, p, toy_hooks{});
  EXPECT_EQ(a.reset.delaytimer, 9u);
  EXPECT_EQ(b.reset.delaytimer, 9u);
  EXPECT_TRUE(a.resetting);
  EXPECT_TRUE(b.resetting);
}

TEST(PropagateReset, DelayExpiryExecutesReset) {
  toy_agent a, b;
  const reset_params p{5, 20};
  for (toy_agent* x : {&a, &b}) {
    trigger_reset(*x, p, toy_hooks{});
    x->reset.resetcount = 0;
  }
  a.reset.delaytimer = 1;
  b.reset.delaytimer = 50;
  propagate_reset(a, b, p, toy_hooks{});
  // a's delay hits 0 -> Reset(a); b then sees a computing partner
  // (sequential evaluation) and also awakens.
  EXPECT_FALSE(a.resetting);
  EXPECT_EQ(a.resets_executed, 1);
  EXPECT_FALSE(b.resetting);
  EXPECT_EQ(b.resets_executed, 1);
}

TEST(PropagateReset, CountdownReachingZeroInitializesDelay) {
  toy_agent a, b;
  const reset_params p{5, 20};
  trigger_reset(a, p, toy_hooks{});
  trigger_reset(b, p, toy_hooks{});
  a.reset.resetcount = 1;
  b.reset.resetcount = 1;
  propagate_reset(a, b, p, toy_hooks{});
  // Both just became dormant: delay initialized, not decremented, no reset.
  EXPECT_EQ(a.reset.resetcount, 0u);
  EXPECT_EQ(a.reset.delaytimer, 20u);
  EXPECT_EQ(b.reset.delaytimer, 20u);
  EXPECT_TRUE(a.resetting);
}

// Global property: from a single triggered agent in a computing population,
// every agent eventually executes Reset exactly once, and the population
// returns to fully computing (the "awakening configuration" analysis of
// Section 3).
TEST(PropagateReset, CleanResetTouchesEveryAgentExactlyOnce) {
  for (const std::uint32_t n : {8u, 32u, 128u}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      std::vector<toy_agent> agents(n);
      const reset_params p = params_for(n);
      trigger_reset(agents[0], p, toy_hooks{});

      rng_t rng(derive_seed(n, seed));
      std::uint64_t steps = 0;
      const std::uint64_t cap = 20000ull * n;
      auto any_resetting = [&] {
        for (const auto& a : agents)
          if (a.resetting) return true;
        return false;
      };
      while (any_resetting() && steps < cap) {
        const agent_pair pr = sample_pair(rng, n);
        toy_agent& x = agents[pr.initiator];
        toy_agent& y = agents[pr.responder];
        if (x.resetting || y.resetting) propagate_reset(x, y, p, toy_hooks{});
        ++steps;
      }
      ASSERT_LT(steps, cap) << "reset did not complete, n=" << n;
      for (std::uint32_t i = 0; i < n; ++i) {
        EXPECT_EQ(agents[i].resets_executed, 1)
            << "agent " << i << " n=" << n << " seed=" << seed;
      }
    }
  }
}

// Completion time scales logarithmically: doubling n several times should
// increase completion time only mildly.
TEST(PropagateReset, CompletionTimeGrowsSlowly) {
  auto completion_time = [](std::uint32_t n, std::uint64_t seed) {
    std::vector<toy_agent> agents(n);
    const reset_params p = params_for(n);
    trigger_reset(agents[0], p, toy_hooks{});
    rng_t rng(seed);
    std::uint64_t steps = 0;
    auto any_resetting = [&] {
      for (const auto& a : agents)
        if (a.resetting) return true;
      return false;
    };
    while (any_resetting()) {
      const agent_pair pr = sample_pair(rng, n);
      toy_agent& x = agents[pr.initiator];
      toy_agent& y = agents[pr.responder];
      if (x.resetting || y.resetting) propagate_reset(x, y, p, toy_hooks{});
      ++steps;
    }
    return static_cast<double>(steps) / n;
  };
  double t64 = 0, t512 = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    t64 += completion_time(64, s + 1);
    t512 += completion_time(512, s + 100);
  }
  // R_max and D_max are Theta(log n), so completion is Theta(log n): the 8x
  // population growth should cost well under 3x in time.
  EXPECT_LT(t512 / t64, 3.0);
}

// Adversarial starting points: arbitrary mixtures of propagating and
// dormant agents still drain to fully computing.
TEST(PropagateReset, DrainsFromArbitraryResettingMixtures) {
  const std::uint32_t n = 64;
  const reset_params p = params_for(n);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<toy_agent> agents(n);
    rng_t rng(seed);
    for (auto& a : agents) {
      const auto mode = uniform_below(rng, 3);
      if (mode == 0) continue;  // computing
      a.resetting = true;
      if (mode == 1) {
        a.reset.resetcount =
            static_cast<std::uint32_t>(1 + uniform_below(rng, p.r_max));
      } else {
        a.reset.resetcount = 0;
        a.reset.delaytimer =
            static_cast<std::uint32_t>(uniform_below(rng, p.d_max + 1));
      }
    }
    std::uint64_t steps = 0;
    const std::uint64_t cap = 20000ull * n;
    auto any_resetting = [&] {
      for (const auto& a : agents)
        if (a.resetting) return true;
      return false;
    };
    while (any_resetting() && steps < cap) {
      const agent_pair pr = sample_pair(rng, n);
      toy_agent& x = agents[pr.initiator];
      toy_agent& y = agents[pr.responder];
      if (x.resetting || y.resetting) propagate_reset(x, y, p, toy_hooks{});
      ++steps;
    }
    EXPECT_LT(steps, cap) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ssr
