// Fuzz wall for the sharded engine (pp/sharded_scheduler.hpp): randomized
// shard boundaries and the determinism contract.
//
// The contract under test:
//   - layout: contiguous shards cover [0, n), sizes differ by at most one,
//     and the tournament slots partition the unordered shard pairs into
//     shard-disjoint sets (that disjointness is what makes lock-free
//     parallel execution sound);
//   - plan: a round's multinomial class counts conserve the requested
//     total exactly, and task stream indices are unique per round;
//   - determinism: trajectories are a pure function of (seed, shard
//     count) -- the sequential hooked run() and the threaded
//     run_parallel() are bit-identical, reruns are bit-identical, and
//     shards=1 is bit-identical to the batched engine it delegates to;
//   - edge shapes: n not divisible by shards, n < shards, shards == n,
//     and budgets that are not round multiples all behave.
//
// The whole suite runs again under ThreadSanitizer via the
// `concurrency_suites` ctest target (tests/CMakeLists.txt), which is what
// certifies the worker pool, the shared counter merge, and the progress
// meter against data races -- so the parallel tests here deliberately push
// more threads than this machine has cores.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "obs/engine_counters.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "pp/engine.hpp"
#include "pp/random.hpp"
#include "pp/rng.hpp"
#include "pp/sharded_scheduler.hpp"

namespace ssr {
namespace {

// A state-mixing protocol where every interaction both consumes RNG words
// and changes both agents: any divergence in pair choice, draw order, or
// stream assignment avalanches into the final configuration, so comparing
// configurations compares whole trajectories.
struct mix_protocol {
  struct agent_state {
    std::uint64_t v = 0;
    bool operator==(const agent_state&) const = default;
  };

  std::uint32_t n = 0;

  std::uint32_t population_size() const { return n; }
  bool interact(agent_state& x, agent_state& y, rng_t& rng) const {
    const std::uint64_t r = rng();
    x.v = x.v * 0x9e3779b97f4a7c15ULL + y.v + r;
    y.v ^= (x.v >> 13) + 0xd1b54a32d192ed03ULL;
    return true;
  }
};

std::vector<mix_protocol::agent_state> mix_init(std::uint32_t n) {
  std::vector<mix_protocol::agent_state> init(n);
  for (std::uint32_t i = 0; i < n; ++i) init[i].v = 0x100 + i;
  return init;
}

std::vector<mix_protocol::agent_state> agents_of(const auto& engine) {
  const auto view = engine.agents();
  return {view.begin(), view.end()};
}

// The fuzzed (n, shards) shapes: divisibility edge cases, n < shards,
// shards == n, single-agent shards, plus random draws.
std::vector<std::pair<std::uint32_t, std::uint32_t>> fuzz_shapes() {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> shapes = {
      {2, 1},  {2, 2},   {2, 8},  {3, 2},  {5, 8},   {7, 3},
      {8, 8},  {9, 4},   {17, 8}, {64, 8}, {65, 8},  {100, 7},
      {33, 2}, {256, 8}, {31, 5}, {12, 12},
  };
  rng_t rng(20260808);
  for (int i = 0; i < 24; ++i) {
    const auto n = static_cast<std::uint32_t>(2 + uniform_below(rng, 200));
    const auto s = static_cast<std::uint32_t>(1 + uniform_below(rng, 16));
    shapes.emplace_back(n, s);
  }
  return shapes;
}

TEST(ShardedSchedulerFuzz, LayoutInvariants) {
  for (const auto& [n, shards_requested] : fuzz_shapes()) {
    const std::uint32_t shards = std::min(shards_requested, n);
    const auto layout = detail::shard_layout::build(n, shards);
    ASSERT_EQ(layout.offset.size(), shards + 1u);
    EXPECT_EQ(layout.offset.front(), 0u);
    EXPECT_EQ(layout.offset.back(), n);
    std::uint32_t lo = n / shards, hi = lo;
    if (n % shards != 0) ++hi;
    for (std::uint32_t s = 0; s < shards; ++s) {
      ASSERT_LT(layout.offset[s], layout.offset[s + 1]);
      const std::uint32_t m = layout.size_of(s);
      EXPECT_GE(m, lo);
      EXPECT_LE(m, hi);
    }
    // Tournament slots: every unordered pair exactly once, and the pairs of
    // one slot touch pairwise-disjoint shards.
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (const auto& slot : layout.cross_slots) {
      std::set<std::uint32_t> touched;
      for (const auto& [a, b] : slot) {
        ASSERT_LT(a, b);
        ASSERT_LT(b, shards);
        EXPECT_TRUE(seen.emplace(a, b).second)
            << "pair (" << a << "," << b << ") scheduled twice";
        EXPECT_TRUE(touched.insert(a).second) << "slot reuses shard " << a;
        EXPECT_TRUE(touched.insert(b).second) << "slot reuses shard " << b;
      }
    }
    EXPECT_EQ(seen.size(), std::size_t{shards} * (shards - 1) / 2);
  }
}

TEST(ShardedSchedulerFuzz, PlanConservesTotalsAndStreams) {
  rng_t plan_rng(77);
  std::vector<std::uint64_t> weights, counts;
  std::vector<std::vector<detail::shard_task>> slots;
  for (const auto& [n, shards_requested] : fuzz_shapes()) {
    const std::uint32_t shards = std::min(shards_requested, n);
    if (shards < 2) continue;  // the engine delegates; no plan exists
    const auto layout = detail::shard_layout::build(n, shards);
    for (const std::uint64_t total : {std::uint64_t{1}, std::uint64_t{7},
                                      std::uint64_t{32},
                                      std::uint64_t{n} * 3 + 1}) {
      detail::plan_shard_round(layout, plan_rng, total, weights, counts,
                               slots);
      std::uint64_t planned = 0;
      std::set<std::uint64_t> streams;
      for (const auto& slot : slots) {
        for (const auto& task : slot) {
          planned += task.count_ab + task.count_ba;
          EXPECT_TRUE(streams.insert(task.stream).second)
              << "stream index " << task.stream << " reused within a round";
          if (task.diagonal) {
            EXPECT_EQ(task.a, task.b);
            EXPECT_GE(layout.size_of(task.a), 2u)
                << "diagonal task on a single-agent shard";
            EXPECT_EQ(task.count_ba, 0u);
          } else {
            ASSERT_LT(task.a, task.b);
          }
          EXPECT_GT(task.count_ab + task.count_ba, 0u)
              << "zero-count task not dropped";
        }
      }
      EXPECT_EQ(planned, total)
          << "n=" << n << " shards=" << shards
          << ": the multinomial draw did not conserve the round total";
    }
  }
}

TEST(ShardedSchedulerFuzz, SequentialMatchesParallelBitIdentical) {
  for (const auto& [n, shards] : fuzz_shapes()) {
    const mix_protocol p{n};
    const std::uint64_t seed = derive_seed(404, n * 31 + shards);
    const std::uint64_t budget = std::uint64_t{11} * n + 5;

    sharded_engine<mix_protocol> seq(p, mix_init(n), seed, {.shards = shards});
    obs::engine_counters seq_counters;
    seq.attach_counters(&seq_counters);
    seq.run(
        budget, [](const agent_pair&) {},
        [](const agent_pair&, bool) { return false; });

    sharded_engine<mix_protocol> par(p, mix_init(n), seed, {.shards = shards});
    obs::engine_counters par_counters;
    par.attach_counters(&par_counters);
    par.run_parallel(budget);

    ASSERT_EQ(seq.interactions(), budget);
    ASSERT_EQ(par.interactions(), budget);
    EXPECT_EQ(agents_of(seq), agents_of(par))
        << "n=" << n << " shards=" << shards
        << ": threaded trajectory diverged from the sequential one";
    EXPECT_EQ(seq_counters.interactions_executed,
              par_counters.interactions_executed);
    EXPECT_EQ(seq_counters.transitions_changed,
              par_counters.transitions_changed);
    EXPECT_EQ(seq_counters.shard_rounds, par_counters.shard_rounds);
  }
}

TEST(ShardedSchedulerFuzz, SameSeedRerunsBitIdenticalDifferentSeedsDiverge) {
  const std::uint32_t n = 97;
  const mix_protocol p{n};
  const std::uint64_t budget = 40 * n;
  for (const std::uint32_t shards : {2u, 3u, 8u}) {
    sharded_engine<mix_protocol> a(p, mix_init(n), 51, {.shards = shards});
    sharded_engine<mix_protocol> b(p, mix_init(n), 51, {.shards = shards});
    sharded_engine<mix_protocol> c(p, mix_init(n), 52, {.shards = shards});
    a.run_parallel(budget);
    b.run_parallel(budget);
    c.run_parallel(budget);
    EXPECT_EQ(agents_of(a), agents_of(b)) << "shards=" << shards;
    EXPECT_NE(agents_of(a), agents_of(c)) << "shards=" << shards;
  }
}

TEST(ShardedSchedulerFuzz, ShardsOneIsTheBatchedEngineBitForBit) {
  for (const std::uint32_t n : {2u, 9u, 64u}) {
    const mix_protocol p{n};
    const std::uint64_t seed = 1000 + n;
    const std::uint64_t budget = 23 * n;

    sharded_engine<mix_protocol> sharded(p, mix_init(n), seed, {.shards = 1});
    batched_engine<mix_protocol> batched(p, mix_init(n), seed);
    EXPECT_EQ(sharded.shards(), 1u);
    std::uint64_t sharded_pairs = 0, batched_pairs = 0;
    sharded.run(
        budget, [&](const agent_pair&) { ++sharded_pairs; },
        [](const agent_pair&, bool) { return false; });
    batched.run(
        budget, [&](const agent_pair&) { ++batched_pairs; },
        [](const agent_pair&, bool) { return false; });
    EXPECT_EQ(sharded_pairs, batched_pairs);
    EXPECT_EQ(sharded.interactions(), batched.interactions());
    EXPECT_EQ(agents_of(sharded), agents_of(batched)) << "n=" << n;
  }
}

TEST(ShardedSchedulerFuzz, PopulationSmallerThanShardCountClamps) {
  for (const std::uint32_t n : {2u, 3u, 5u}) {
    const mix_protocol p{n};
    sharded_engine<mix_protocol> eng(p, mix_init(n), 7, {.shards = 64});
    EXPECT_LE(eng.shards(), n);
    const std::uint64_t budget = 100;
    eng.run_parallel(budget);
    EXPECT_EQ(eng.interactions(), budget);
    EXPECT_DOUBLE_EQ(eng.parallel_time(),
                     static_cast<double>(budget) / static_cast<double>(n));
  }
}

TEST(ShardedSchedulerFuzz, BudgetHitExactlyAcrossOddBudgets) {
  const std::uint32_t n = 50;
  const mix_protocol p{n};
  // Budgets straddling round boundaries (round length is max(32, n/2)=32
  // here... n/2=25 -> 32): below, at, just above, and far beyond one round.
  for (const std::uint64_t budget : {1ull, 31ull, 32ull, 33ull, 1000ull}) {
    sharded_engine<mix_protocol> eng(p, mix_init(n), 3, {.shards = 4});
    const bool stopped = eng.run(
        budget, [](const agent_pair&) {},
        [](const agent_pair&, bool) { return false; });
    EXPECT_FALSE(stopped);
    EXPECT_EQ(eng.interactions(), budget);
  }
}

TEST(ShardedSchedulerFuzz, PostStopHaltsMidRound) {
  const std::uint32_t n = 64;
  const mix_protocol p{n};
  sharded_engine<mix_protocol> eng(p, mix_init(n), 11, {.shards = 4});
  std::uint64_t seen = 0;
  const bool stopped = eng.run(
      1'000'000, [](const agent_pair&) {},
      [&](const agent_pair&, bool) { return ++seen == 100; });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(eng.interactions(), 100u);
}

TEST(ShardedSchedulerFuzz, HooksSeeInShardPairs) {
  const std::uint32_t n = 37;
  const mix_protocol p{n};
  const std::uint32_t shards = 5;
  sharded_engine<mix_protocol> eng(p, mix_init(n), 13, {.shards = shards});
  const auto layout = detail::shard_layout::build(n, shards);
  auto shard_of = [&](std::uint32_t agent) {
    std::uint32_t s = 0;
    while (layout.offset[s + 1] <= agent) ++s;
    return s;
  };
  std::uint64_t same_shard = 0, cross_shard = 0;
  eng.run(
      20 * n,
      [&](const agent_pair& pair) {
        ASSERT_NE(pair.initiator, pair.responder);
        ASSERT_LT(pair.initiator, n);
        ASSERT_LT(pair.responder, n);
      },
      [&](const agent_pair& pair, bool) {
        (shard_of(pair.initiator) == shard_of(pair.responder) ? same_shard
                                                              : cross_shard)++;
        return false;
      });
  // Under the uniform pair law both class groups have mass at these sizes
  // (cross weight dominates at 5 shards of ~7 agents).
  EXPECT_GT(same_shard, 0u);
  EXPECT_GT(cross_shard, 0u);
}

TEST(ShardedSchedulerFuzz, CountersAccountForEveryInteraction) {
  const std::uint32_t n = 80;
  const mix_protocol p{n};
  obs::engine_counters counters;
  sharded_engine<mix_protocol> eng(p, mix_init(n), 17, {.shards = 8});
  eng.attach_counters(&counters);
  const std::uint64_t budget = 10 * n;
  eng.run_parallel(budget);
  EXPECT_EQ(counters.interactions_executed, budget);
  // mix_protocol always reports a change.
  EXPECT_EQ(counters.transitions_changed, budget);
  EXPECT_GE(counters.shard_rounds, 1u);
  // round length = max(32, n/2) = 40 -> exactly budget/40 rounds here.
  EXPECT_EQ(counters.shard_rounds, budget / 40);
  // A second run keeps accumulating into the same sink.
  eng.run_parallel(budget + 5);
  EXPECT_EQ(counters.interactions_executed, budget + 5);
}

TEST(ShardedSchedulerFuzz, ManyEnginesRunParallelConcurrently) {
  // Engines on separate threads, each with its own worker pool: the
  // TSan-visible surface of executor setup/teardown and the shared counter
  // merge, crossed between unrelated engine instances.
  constexpr int kEngines = 4;
  std::vector<std::thread> drivers;
  std::vector<std::uint64_t> results(kEngines);
  for (int e = 0; e < kEngines; ++e) {
    drivers.emplace_back([e, &results] {
      const std::uint32_t n = 48 + static_cast<std::uint32_t>(e);
      const mix_protocol p{n};
      obs::engine_counters counters;
      sharded_engine<mix_protocol> eng(p, mix_init(n),
                                       static_cast<std::uint64_t>(e) + 1,
                                       {.shards = 4});
      eng.attach_counters(&counters);
      eng.run_parallel(std::uint64_t{25} * n);
      results[e] = counters.interactions_executed;
    });
  }
  for (auto& t : drivers) t.join();
  for (int e = 0; e < kEngines; ++e) {
    EXPECT_EQ(results[e], std::uint64_t{25} * (48 + e));
  }
}

// The plan's binomial sampler, both regimes: the waiting-time path
// (small mean) and BTRS transformed rejection (large mean) must both match
// Binomial(t, p) moments -- a drifting sampler would shift every class
// count in the multinomial plan.
TEST(BinomialDraw, MomentsMatchBothRegimes) {
  struct regime {
    std::uint64_t t;
    double p;
  };
  rng_t rng(2024);
  for (const auto& [t, p] : {regime{40, 0.05},    // small: waiting-time
                             regime{500, 0.004},  // small mean, large t
                             regime{400, 0.25},   // BTRS
                             regime{10'000, 0.5},  // BTRS at p = 1/2
                             regime{300, 0.9}}) {  // mirrored p > 1/2
    const int draws = 20'000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < draws; ++i) {
      const auto x = static_cast<double>(binomial_draw(rng, t, p));
      ASSERT_LE(x, static_cast<double>(t));
      sum += x;
      sum_sq += x * x;
    }
    const double mean = sum / draws;
    const double expected_mean = static_cast<double>(t) * p;
    const double expected_var = expected_mean * (1.0 - p);
    const double var = sum_sq / draws - mean * mean;
    // 5-sigma band on the sample mean; ~10% band on the variance.
    EXPECT_NEAR(mean, expected_mean,
                5.0 * std::sqrt(expected_var / draws) + 1e-9)
        << "t=" << t << " p=" << p;
    EXPECT_NEAR(var, expected_var, 0.1 * expected_var + 0.05)
        << "t=" << t << " p=" << p;
  }
}

}  // namespace
}  // namespace ssr
