#include "pp/continuous_time.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pp/simulation.hpp"
#include "protocols/silent_n_state.hpp"

namespace ssr {
namespace {

TEST(ContinuousTime, ExponentialDrawHasUnitMean) {
  rng_t rng(1);
  double sum = 0.0;
  constexpr int draws = 200000;
  for (int i = 0; i < draws; ++i) sum += exponential_draw(rng);
  EXPECT_NEAR(sum / draws, 1.0, 0.01);
}

TEST(ContinuousTime, ClockAdvancesMonotonically) {
  poisson_clock clock(8);
  rng_t rng(2);
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double t = clock.tick(rng);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_EQ(clock.events(), 1000u);
}

// After k events, continuous time is Gamma(k, 1/n): mean k/n (the parallel
// time), standard deviation sqrt(k)/n.  The two time measures coincide up
// to lower-order fluctuations.
TEST(ContinuousTime, ConcentratesAroundParallelTime) {
  const std::uint32_t n = 64;
  constexpr std::uint64_t k = 64000;  // 1000 parallel time units
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    poisson_clock clock(n);
    rng_t rng(seed);
    for (std::uint64_t i = 0; i < k; ++i) clock.tick(rng);
    const double expected = clock.parallel_time();
    const double sigma = std::sqrt(static_cast<double>(k)) / n;
    EXPECT_NEAR(clock.now(), expected, 6 * sigma) << "seed " << seed;
  }
}

// End-to-end: running the baseline under the continuous clock, the
// continuous stabilization time matches the discrete parallel time within
// the Gamma fluctuation band.
TEST(ContinuousTime, StabilizationTimesAgreeAcrossSemantics) {
  const std::uint32_t n = 32;
  silent_n_state_ssr p(n);
  simulation<silent_n_state_ssr> sim(
      p, std::vector<silent_n_state_ssr::agent_state>(n), 7);
  poisson_clock clock(n);
  rng_t clock_rng(8);
  while (!is_valid_ranking(sim.protocol(), sim.agents())) {
    sim.step();
    clock.tick(clock_rng);
  }
  const double discrete = sim.parallel_time();
  const double continuous = clock.now();
  const double sigma =
      std::sqrt(static_cast<double>(sim.interactions())) / n;
  EXPECT_NEAR(continuous, discrete, 6 * sigma + 1e-9);
}

}  // namespace
}  // namespace ssr
