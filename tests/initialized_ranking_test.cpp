#include "protocols/initialized_ranking.hpp"

#include <gtest/gtest.h>

#include "pp/convergence.hpp"
#include "pp/simulation.hpp"
#include "verify/reachability.hpp"

namespace ssr {
namespace {

TEST(InitializedRanking, ConvergesFromDesignatedStart) {
  for (const std::uint32_t n : {2u, 5u, 16u, 64u}) {
    initialized_tree_ranking p(n);
    std::vector<initialized_tree_ranking::agent_state> final_config;
    const auto r = measure_convergence(p, p.initial_configuration(),
                                       100 + n, {}, &final_config);
    ASSERT_TRUE(r.converged) << "n=" << n;
    EXPECT_TRUE(is_valid_ranking(p, final_config));
    EXPECT_EQ(leader_count(p, final_config), 1u);
  }
}

TEST(InitializedRanking, SilentOnceRanked) {
  const std::uint32_t n = 12;
  initialized_tree_ranking p(n);
  std::vector<initialized_tree_ranking::agent_state> final_config;
  const auto r =
      measure_convergence(p, p.initial_configuration(), 7, {}, &final_config);
  ASSERT_TRUE(r.converged);
  simulation<initialized_tree_ranking> sim(p, final_config, 1);
  EXPECT_TRUE(sim.is_silent_configuration());
}

TEST(InitializedRanking, LinearTime) {
  // Theta(n): doubling n should roughly double the mean time.
  auto mean_time = [](std::uint32_t n) {
    initialized_tree_ranking p(n);
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
      total += measure_convergence(p, p.initial_configuration(), seed)
                   .convergence_time;
    }
    return total / 20;
  };
  const double t64 = mean_time(64);
  const double t256 = mean_time(256);
  EXPECT_GT(t256 / t64, 2.0);
  EXPECT_LT(t256 / t64, 8.0);
}

TEST(InitializedRanking, TinyStateSpace) {
  EXPECT_EQ(initialized_tree_ranking::state_count(100), 301u);
  initialized_tree_ranking p(5);
  EXPECT_EQ(p.all_states().size(), initialized_tree_ranking::state_count(5));
}

TEST(InitializedRanking, NotSelfStabilizing) {
  // The price of dropping the reset machinery: the all-unsettled
  // configuration (or any corrupted one) deadlocks, and the exhaustive
  // verifier rejects the protocol outright.
  const std::uint32_t n = 3;
  initialized_tree_ranking p(n);
  const auto result = verify_self_stabilization(p, p.all_states());
  EXPECT_FALSE(result.self_stabilizing);
  ASSERT_TRUE(result.counterexample.has_value());
}

TEST(InitializedRanking, AllUnsettledDeadlocks) {
  const std::uint32_t n = 8;
  initialized_tree_ranking p(n);
  std::vector<initialized_tree_ranking::agent_state> config(n);  // no root
  simulation<initialized_tree_ranking> sim(p, config, 3);
  EXPECT_TRUE(sim.is_silent_configuration());
  for (int i = 0; i < 10000; ++i) sim.step();
  EXPECT_FALSE(is_valid_ranking(p, sim.agents()));
}

}  // namespace
}  // namespace ssr
