#include "pp/scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ssr {
namespace {

TEST(Scheduler, PairsAreDistinctAndInRange) {
  rng_t rng(1);
  for (int i = 0; i < 10000; ++i) {
    const agent_pair p = sample_pair(rng, 7);
    EXPECT_LT(p.initiator, 7u);
    EXPECT_LT(p.responder, 7u);
    EXPECT_NE(p.initiator, p.responder);
  }
}

TEST(Scheduler, MinimumPopulationOfTwo) {
  rng_t rng(2);
  for (int i = 0; i < 100; ++i) {
    const agent_pair p = sample_pair(rng, 2);
    EXPECT_NE(p.initiator, p.responder);
  }
}

TEST(Scheduler, RejectsPopulationOfOne) {
  rng_t rng(3);
  EXPECT_THROW(sample_pair(rng, 1), std::logic_error);
}

// Every ordered pair should be drawn with probability 1/(n(n-1)).
TEST(Scheduler, OrderedPairsAreUniform) {
  rng_t rng(5);
  constexpr std::uint32_t n = 6;
  constexpr int draws = 300000;
  std::vector<int> count(n * n, 0);
  for (int i = 0; i < draws; ++i) {
    const agent_pair p = sample_pair(rng, n);
    ++count[p.initiator * n + p.responder];
  }
  const double expected = static_cast<double>(draws) / (n * (n - 1));
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (i == j) {
        EXPECT_EQ(count[i * n + j], 0);
      } else {
        EXPECT_NEAR(count[i * n + j], expected, 5 * std::sqrt(expected))
            << "pair (" << i << "," << j << ")";
      }
    }
  }
}

// The scheduler must be direction-asymmetric in principle (initiator vs
// responder) even though most of our transitions are symmetric.
TEST(Scheduler, BothOrdersOccur) {
  rng_t rng(7);
  bool saw_01 = false, saw_10 = false;
  for (int i = 0; i < 1000 && !(saw_01 && saw_10); ++i) {
    const agent_pair p = sample_pair(rng, 2);
    saw_01 |= p.initiator == 0;
    saw_10 |= p.initiator == 1;
  }
  EXPECT_TRUE(saw_01);
  EXPECT_TRUE(saw_10);
}

}  // namespace
}  // namespace ssr
