#include "pp/rng.hpp"

#include <gtest/gtest.h>

#include <set>

#include "pp/random.hpp"

namespace ssr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  xoshiro256pp a(42);
  xoshiro256pp b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  xoshiro256pp a(1);
  xoshiro256pp b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 5);
}

TEST(Rng, DerivedSeedsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 10000; ++i)
    seeds.insert(derive_seed(123, i));
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(Rng, DerivedSeedsDependOnBase) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

TEST(Rng, DerivedStreamsAreDistinctAcrossBothCoordinates) {
  // The sharded engine keys per-task RNG streams on (seed, round, task); a
  // collision would hand two tasks the same draw sequence.
  std::set<std::uint64_t> streams;
  for (std::uint64_t hi = 0; hi < 100; ++hi) {
    for (std::uint64_t lo = 0; lo < 100; ++lo)
      streams.insert(derive_stream(123, hi, lo));
  }
  EXPECT_EQ(streams.size(), 10000u);
  // Coordinates are not interchangeable, and the base matters.
  EXPECT_NE(derive_stream(123, 1, 2), derive_stream(123, 2, 1));
  EXPECT_NE(derive_stream(1, 7, 7), derive_stream(2, 7, 7));
}

TEST(Rng, DerivedStreamsDecorrelatedFromDerivedSeeds) {
  // Stream seeds and trial seeds draw from the same 64-bit space but must
  // not systematically collide with each other.
  std::set<std::uint64_t> all;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    all.insert(derive_seed(9, i));
    all.insert(derive_stream(9, 0, i));
  }
  EXPECT_EQ(all.size(), 10000u);
}

TEST(Rng, JumpYieldsDisjointSubsequences) {
  // jump() advances 2^128 steps: the pre- and post-jump output windows are
  // different subsequences of one stream and must not overlap.
  xoshiro256pp a(99);
  xoshiro256pp b = a;
  b.jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 4096; ++i) from_a.insert(a());
  int collisions = 0;
  for (int i = 0; i < 4096; ++i) collisions += from_a.count(b()) ? 1 : 0;
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, LongJumpYieldsDisjointSubsequences) {
  xoshiro256pp a(101);
  xoshiro256pp b = a;
  b.long_jump();
  std::set<std::uint64_t> from_a;
  for (int i = 0; i < 4096; ++i) from_a.insert(a());
  int collisions = 0;
  for (int i = 0; i < 4096; ++i) collisions += from_a.count(b()) ? 1 : 0;
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, JumpIsDeterministic) {
  xoshiro256pp a(7);
  xoshiro256pp b(7);
  a.jump();
  b.jump();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(UniformBelow, StaysInRange) {
  rng_t rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(uniform_below(rng, 10), 10u);
    EXPECT_EQ(uniform_below(rng, 1), 0u);
  }
}

TEST(UniformBelow, RoughlyUniform) {
  rng_t rng(11);
  constexpr int buckets = 16;
  constexpr int draws = 160000;
  int count[buckets] = {};
  for (int i = 0; i < draws; ++i) ++count[uniform_below(rng, buckets)];
  const double expected = static_cast<double>(draws) / buckets;
  for (int b = 0; b < buckets; ++b) {
    EXPECT_NEAR(count[b], expected, 5 * std::sqrt(expected))
        << "bucket " << b;
  }
}

TEST(UniformBelow, RejectsZeroBound) {
  rng_t rng(1);
  EXPECT_THROW(uniform_below(rng, 0), std::logic_error);
}

TEST(UniformRange, InclusiveBounds) {
  rng_t rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = uniform_range(rng, -2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformUnit, InHalfOpenInterval) {
  rng_t rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform_unit(rng);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(GeometricFailures, MatchesExpectation) {
  rng_t rng(17);
  const double p = 0.1;
  double sum = 0.0;
  constexpr int draws = 200000;
  for (int i = 0; i < draws; ++i)
    sum += static_cast<double>(geometric_failures(rng, p));
  const double mean = sum / draws;
  // E[failures] = (1-p)/p = 9.
  EXPECT_NEAR(mean, 9.0, 0.2);
}

TEST(GeometricFailures, CertainSuccessIsZero) {
  rng_t rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(geometric_failures(rng, 1.0), 0u);
}

TEST(CoinFlip, RoughlyFair) {
  rng_t rng(23);
  int heads = 0;
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) heads += coin_flip(rng) ? 1 : 0;
  EXPECT_NEAR(heads, draws / 2, 5 * std::sqrt(draws / 4.0));
}

}  // namespace
}  // namespace ssr
