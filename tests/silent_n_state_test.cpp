#include "protocols/silent_n_state.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/ks_test.hpp"
#include "analysis/statistics.hpp"
#include "pp/convergence.hpp"
#include "pp/simulation.hpp"
#include "pp/trial.hpp"
#include "protocols/adversary.hpp"

namespace ssr {
namespace {

TEST(SilentNState, TransitionIsProtocolOne) {
  silent_n_state_ssr p(5);
  rng_t rng(1);
  silent_n_state_ssr::agent_state a{2}, b{2};
  EXPECT_TRUE(p.interact(a, b, rng));
  EXPECT_EQ(a.rank, 2u);  // initiator unchanged
  EXPECT_EQ(b.rank, 3u);  // responder bumped

  silent_n_state_ssr::agent_state c{1}, d{3};
  EXPECT_FALSE(p.interact(c, d, rng));
  EXPECT_EQ(c.rank, 1u);
  EXPECT_EQ(d.rank, 3u);
}

TEST(SilentNState, RankWrapsModuloN) {
  silent_n_state_ssr p(4);
  rng_t rng(1);
  silent_n_state_ssr::agent_state a{3}, b{3};
  p.interact(a, b, rng);
  EXPECT_EQ(b.rank, 0u);
}

TEST(SilentNState, ExactlyNStates) {
  EXPECT_EQ(silent_n_state_ssr::state_count(17), 17u);
}

TEST(SilentNState, StabilizesFromAllZero) {
  silent_n_state_ssr p(16);
  std::vector<silent_n_state_ssr::agent_state> init(16);
  std::vector<silent_n_state_ssr::agent_state> final_config;
  const auto r = measure_convergence(p, init, 77, {}, &final_config);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(is_valid_ranking(p, final_config));
  // Silent once correct.
  simulation<silent_n_state_ssr> sim(p, final_config, 1);
  EXPECT_TRUE(sim.is_silent_configuration());
}

// Self-stabilization property: valid ranking reached from random
// adversarial configurations across seeds and sizes.
class SilentNStateStabilization
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(SilentNStateStabilization, ReachesValidRanking) {
  const auto [n, seed] = GetParam();
  silent_n_state_ssr p(n);
  rng_t rng(static_cast<std::uint64_t>(seed) * 7919 + n);
  auto init = adversarial_configuration(p, rng);
  std::vector<silent_n_state_ssr::agent_state> final_config;
  convergence_options opt;
  opt.max_parallel_time = 1e7;
  const auto r = measure_convergence(p, std::move(init), seed, opt,
                                     &final_config);
  ASSERT_TRUE(r.converged) << "n=" << n << " seed=" << seed;
  EXPECT_TRUE(is_valid_ranking(p, final_config));
  EXPECT_EQ(leader_count(p, final_config), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SilentNStateStabilization,
    ::testing::Combine(::testing::Values(2u, 3u, 5u, 8u, 16u, 33u),
                       ::testing::Range(0, 5)));

TEST(SilentNState, LowerBoundConfigurationShape) {
  silent_n_state_ssr p(8);
  const auto config = p.lower_bound_configuration();
  std::vector<int> count(8, 0);
  for (const auto& s : config) ++count[s.rank];
  EXPECT_EQ(count[0], 2);
  EXPECT_EQ(count[7], 0);
  for (int r = 1; r < 7; ++r) EXPECT_EQ(count[r], 1);
}

TEST(AcceleratedSilentNState, AgreesWithDirectSimulatorOnAverage) {
  // Distributional check: mean stabilization times of the direct and
  // accelerated simulators from the same initial configuration must agree
  // within sampling error.
  const std::uint32_t n = 12;
  silent_n_state_ssr p(n);
  std::vector<silent_n_state_ssr::agent_state> init(n);  // all rank 0

  const auto direct = run_trials(150, 1000, [&](std::uint64_t seed) {
    const auto r = measure_convergence(p, init, seed);
    return r.convergence_time;
  });
  const auto fast = run_trials(150, 2000, [&](std::uint64_t seed) {
    std::vector<std::uint32_t> ranks(n, 0);
    accelerated_silent_n_state sim(n, ranks, seed);
    return sim.run_to_stabilization();
  });
  const summary ds = summarize(direct);
  const summary fs = summarize(fast);
  const double tolerance =
      4.0 * std::sqrt(ds.stderr_mean * ds.stderr_mean +
                      fs.stderr_mean * fs.stderr_mean);
  EXPECT_NEAR(ds.mean, fs.mean, tolerance);
}

TEST(AcceleratedSilentNState, DistributionMatchesDirectSimulator) {
  // Full-distribution check (Kolmogorov-Smirnov), not just the mean: the
  // accelerated simulator samples the exact embedded jump chain, so the
  // stabilization-time distributions must coincide.
  const std::uint32_t n = 10;
  silent_n_state_ssr p(n);
  std::vector<silent_n_state_ssr::agent_state> init(n);  // all rank 0

  const auto direct = run_trials(400, 51000, [&](std::uint64_t seed) {
    return measure_convergence(p, init, seed).convergence_time;
  });
  const auto fast = run_trials(400, 52000, [&](std::uint64_t seed) {
    std::vector<std::uint32_t> ranks(n, 0);
    accelerated_silent_n_state sim(n, ranks, seed);
    return sim.run_to_stabilization();
  });
  const auto ks = ks_two_sample(direct, fast);
  EXPECT_GT(ks.p_value, 0.001) << "KS statistic " << ks.statistic;
}

TEST(AcceleratedSilentNState, StableImmediatelyOnValidRanking) {
  std::vector<std::uint32_t> ranks{0, 1, 2, 3};
  accelerated_silent_n_state sim(4, ranks, 1);
  EXPECT_TRUE(sim.stable());
  EXPECT_DOUBLE_EQ(sim.run_to_stabilization(), 0.0);
}

TEST(AcceleratedSilentNState, ResolvesSingleCollision) {
  // Two agents at rank 0, rank 1 free: exactly one bottleneck transition.
  std::vector<std::uint32_t> ranks{0, 0, 2, 3};
  accelerated_silent_n_state sim(4, ranks, 5);
  const double t = sim.run_to_stabilization();
  EXPECT_TRUE(sim.stable());
  EXPECT_GT(t, 0.0);
}

TEST(AcceleratedSilentNState, QuadraticScalingFromLowerBoundConfig) {
  // Mean stabilization time from the lower-bound configuration should grow
  // ~4x when n doubles.
  auto mean_time = [](std::uint32_t n) {
    silent_n_state_ssr p(n);
    const auto config = p.lower_bound_configuration();
    std::vector<std::uint32_t> ranks(n);
    for (std::uint32_t i = 0; i < n; ++i) ranks[i] = config[i].rank;
    const auto times = run_trials(30, n, [&](std::uint64_t seed) {
      accelerated_silent_n_state sim(n, ranks, seed);
      return sim.run_to_stabilization();
    });
    return summarize(times).mean;
  };
  const double t64 = mean_time(64);
  const double t128 = mean_time(128);
  const double ratio = t128 / t64;
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.5);
}

TEST(AcceleratedSilentNState, RejectsOutOfRangeRanks) {
  std::vector<std::uint32_t> ranks{0, 9};
  EXPECT_THROW(accelerated_silent_n_state(2, ranks, 1), std::logic_error);
}

}  // namespace
}  // namespace ssr
