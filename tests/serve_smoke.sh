#!/bin/sh
# End-to-end serve smoke: boot the daemon on an ephemeral port, drive it
# with ssr_client (single run, concurrent sweep, cached replay, traced +
# profiled run, metrics scrape, 8-client hammer), check the cache actually
# served the replay, check the wire telemetry round trip (trace artifact
# byte-identical client/server, trace_stats parses it, events.jsonl
# journal, metrics.prom snapshot), validate the emitted BENCH_SERVE.json,
# and shut down cleanly.
#
#   serve_smoke.sh <ssr_serve> <ssr_client> <report_diff> [trace_stats]
#
# Run by ctest (serve_e2e) and by the CI serve leg; exits non-zero on the
# first failed step.  SERVE_SMOKE_OUT_DIR / SERVE_SMOKE_HISTORY_DIR, when
# set, redirect the hammer's BENCH_SERVE.json into the caller's report and
# bench-history directories (CI does this so report_trend gates the serve
# latency, cache-hit-rate, and telemetry-overhead rows); by default
# everything stays in a scratch directory that is removed on exit.
# SERVE_SMOKE_TELEMETRY_DIR, when set, keeps the daemon's telemetry
# directory (journal, per-job artifacts, metrics.prom) for upload.
set -eu

SERVE=$1
CLIENT=$2
REPORT_DIFF=$3
TRACE_STATS=${4:-}

WORK=$(mktemp -d serve_smoke.XXXXXX)
PORT_FILE=$WORK/port
DAEMON_LOG=$WORK/daemon.log
DAEMON_PID=

cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

TELEMETRY_DIR=${SERVE_SMOKE_TELEMETRY_DIR:-$WORK/telemetry}
"$SERVE" --port=0 --workers=4 --queue-depth=32 --cache=64 \
  --port-file="$PORT_FILE" \
  --telemetry-dir="$TELEMETRY_DIR" --stats-period-s=1 \
  >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# Wait (up to ~5s) for the daemon to publish its port.
tries=0
while [ ! -s "$PORT_FILE" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 50 ]; then
    echo "FAIL: daemon never wrote $PORT_FILE" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
  fi
  kill -0 "$DAEMON_PID" 2>/dev/null || {
    echo "FAIL: daemon exited early" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
  }
  sleep 0.1
done

echo "== ping"
"$CLIENT" --port-file="$PORT_FILE" --ping

echo "== single run"
"$CLIENT" --port-file="$PORT_FILE" --protocol=optimal --n=32 --trials=2 \
  --seed=7 >"$WORK/run1.json"
grep -q '"ok": true' "$WORK/run1.json"
grep -q '"cached": false' "$WORK/run1.json"

echo "== cached replay must be served from the cache, bit-identical"
"$CLIENT" --port-file="$PORT_FILE" --protocol=optimal --n=32 --trials=2 \
  --seed=7 >"$WORK/run2.json"
grep -q '"cached": true' "$WORK/run2.json"
# Strip the per-request envelope fields (cached flag, request id) and
# compare the rest -- the result payload must be bit-identical.
sed 's/"cached": [a-z]*//; s/"request_id": "job-[0-9]*"//' \
  "$WORK/run1.json" >"$WORK/run1.stripped"
sed 's/"cached": [a-z]*//; s/"request_id": "job-[0-9]*"//' \
  "$WORK/run2.json" >"$WORK/run2.stripped"
cmp "$WORK/run1.stripped" "$WORK/run2.stripped"

echo "== concurrent sweep fan-out"
"$CLIENT" --port-file="$PORT_FILE" --sweep-n=16,24,32 --trials=2 --seed=7

echo "== traced + profiled run, artifacts pulled client-side"
"$CLIENT" --port-file="$PORT_FILE" --protocol=optimal --n=32 --trials=2 \
  --seed=7 --trace-out="$WORK/trace.jsonl" \
  --profile-out="$WORK/profile.json" >"$WORK/run3.json"
grep -q '"ok": true' "$WORK/run3.json"
# Telemetry bypasses the cache lookup: the earlier identical spec is
# cached, but this request must execute to produce artifacts.
grep -q '"cached": false' "$WORK/run3.json"
grep -q '"request_id"' "$WORK/run3.json"
grep -q '"event":"trace_header"' "$WORK/trace.jsonl"
grep -q '"schema": "ssr.profile"' "$WORK/profile.json"

echo "== client trace matches the daemon's artifact byte for byte"
REQUEST_ID=$(sed -n 's/.*"request_id": "\(job-[0-9]*\)".*/\1/p' \
  "$WORK/run3.json" | head -n1)
cmp "$WORK/trace.jsonl" "$TELEMETRY_DIR/$REQUEST_ID/trace.jsonl"
test -s "$TELEMETRY_DIR/$REQUEST_ID/profile.json"

if [ -n "$TRACE_STATS" ]; then
  echo "== trace_stats parses the served trace unchanged"
  "$TRACE_STATS" "$WORK/trace.jsonl"
fi

echo "== events.jsonl journal recorded the job lifecycle"
grep -q '"event":"journal_header"' "$TELEMETRY_DIR/events.jsonl"
grep -q '"event":"admit"' "$TELEMETRY_DIR/events.jsonl"
grep -q '"event":"cache_hit"' "$TELEMETRY_DIR/events.jsonl"
grep -q "\"event\":\"complete\".*\"request_id\":\"$REQUEST_ID\"" \
  "$TELEMETRY_DIR/events.jsonl"

echo "== live metrics exposition scrapes"
"$CLIENT" --port-file="$PORT_FILE" --metrics >"$WORK/metrics.prom"
grep -q '# TYPE ssr_serve_jobs_completed counter' "$WORK/metrics.prom"
grep -q '# TYPE ssr_serve_cache_hit_rate gauge' "$WORK/metrics.prom"
grep -q 'ssr_serve_job_seconds{quantile="0.99"}' "$WORK/metrics.prom"

echo "== periodic metrics.prom snapshot appears"
tries=0
while [ ! -s "$TELEMETRY_DIR/metrics.prom" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 50 ]; then
    echo "FAIL: no metrics.prom snapshot after 5s" >&2
    exit 1
  fi
  sleep 0.1
done
grep -q 'ssr_serve_jobs_completed' "$TELEMETRY_DIR/metrics.prom"

echo "== hammer: 8 concurrent clients + telemetry overhead probe"
OUT_DIR=${SERVE_SMOKE_OUT_DIR:-$WORK/reports}
if [ -n "${SERVE_SMOKE_HISTORY_DIR:-}" ]; then
  "$CLIENT" --port-file="$PORT_FILE" --hammer=8 --requests=4 \
    --protocol=optimal --n=256 --trials=2 --seed=7 --overhead-probe=3 \
    --out-dir="$OUT_DIR" --history-dir="$SERVE_SMOKE_HISTORY_DIR"
else
  "$CLIENT" --port-file="$PORT_FILE" --hammer=8 --requests=4 \
    --protocol=optimal --n=256 --trials=2 --seed=7 --overhead-probe=3 \
    --out-dir="$OUT_DIR"
fi
"$REPORT_DIFF" --validate "$OUT_DIR/BENCH_SERVE.json"
grep -q '"telemetry_overhead"' "$OUT_DIR/BENCH_SERVE.json"

echo "== stats: the cache must have served hits by now"
"$CLIENT" --port-file="$PORT_FILE" --stats --raw >"$WORK/stats.json"
grep -q '"hits"' "$WORK/stats.json"
if grep -q '"hits": 0,' "$WORK/stats.json"; then
  echo "FAIL: cache never hit" >&2
  cat "$WORK/stats.json" >&2
  exit 1
fi
# The default (pretty) stats rendering carries the same sections.
"$CLIENT" --port-file="$PORT_FILE" --stats | grep -q 'hit_rate:'

echo "== graceful shutdown drains"
"$CLIENT" --port-file="$PORT_FILE" --shutdown
wait "$DAEMON_PID"
DAEMON_PID=
grep -q "drained; bye" "$DAEMON_LOG"

echo "serve smoke: PASS"
