#!/bin/sh
# End-to-end serve smoke: boot the daemon on an ephemeral port, drive it
# with ssr_client (single run, concurrent sweep, cached replay, 8-client
# hammer), check the cache actually served the replay, validate the
# emitted BENCH_SERVE.json, and shut down cleanly.
#
#   serve_smoke.sh <ssr_serve> <ssr_client> <report_diff>
#
# Run by ctest (serve_e2e) and by the CI serve leg; exits non-zero on the
# first failed step.  SERVE_SMOKE_OUT_DIR / SERVE_SMOKE_HISTORY_DIR, when
# set, redirect the hammer's BENCH_SERVE.json into the caller's report and
# bench-history directories (CI does this so report_trend gates the serve
# latency and cache-hit-rate rows); by default everything stays in a
# scratch directory that is removed on exit.
set -eu

SERVE=$1
CLIENT=$2
REPORT_DIFF=$3

WORK=$(mktemp -d serve_smoke.XXXXXX)
PORT_FILE=$WORK/port
DAEMON_LOG=$WORK/daemon.log
DAEMON_PID=

cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

"$SERVE" --port=0 --workers=4 --queue-depth=32 --cache=64 \
  --port-file="$PORT_FILE" >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!

# Wait (up to ~5s) for the daemon to publish its port.
tries=0
while [ ! -s "$PORT_FILE" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 50 ]; then
    echo "FAIL: daemon never wrote $PORT_FILE" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
  fi
  kill -0 "$DAEMON_PID" 2>/dev/null || {
    echo "FAIL: daemon exited early" >&2
    cat "$DAEMON_LOG" >&2
    exit 1
  }
  sleep 0.1
done

echo "== ping"
"$CLIENT" --port-file="$PORT_FILE" --ping

echo "== single run"
"$CLIENT" --port-file="$PORT_FILE" --protocol=optimal --n=32 --trials=2 \
  --seed=7 >"$WORK/run1.json"
grep -q '"ok": true' "$WORK/run1.json"
grep -q '"cached": false' "$WORK/run1.json"

echo "== cached replay must be served from the cache, bit-identical"
"$CLIENT" --port-file="$PORT_FILE" --protocol=optimal --n=32 --trials=2 \
  --seed=7 >"$WORK/run2.json"
grep -q '"cached": true' "$WORK/run2.json"
# Strip the only legitimately differing field and compare the rest.
sed 's/"cached": [a-z]*//' "$WORK/run1.json" >"$WORK/run1.stripped"
sed 's/"cached": [a-z]*//' "$WORK/run2.json" >"$WORK/run2.stripped"
cmp "$WORK/run1.stripped" "$WORK/run2.stripped"

echo "== concurrent sweep fan-out"
"$CLIENT" --port-file="$PORT_FILE" --sweep-n=16,24,32 --trials=2 --seed=7

echo "== hammer: 8 concurrent clients, BENCH_SERVE.json emitted"
OUT_DIR=${SERVE_SMOKE_OUT_DIR:-$WORK/reports}
if [ -n "${SERVE_SMOKE_HISTORY_DIR:-}" ]; then
  "$CLIENT" --port-file="$PORT_FILE" --hammer=8 --requests=4 \
    --protocol=optimal --n=32 --trials=2 --seed=7 \
    --out-dir="$OUT_DIR" --history-dir="$SERVE_SMOKE_HISTORY_DIR"
else
  "$CLIENT" --port-file="$PORT_FILE" --hammer=8 --requests=4 \
    --protocol=optimal --n=32 --trials=2 --seed=7 --out-dir="$OUT_DIR"
fi
"$REPORT_DIFF" --validate "$OUT_DIR/BENCH_SERVE.json"

echo "== stats: the cache must have served hits by now"
"$CLIENT" --port-file="$PORT_FILE" --stats >"$WORK/stats.json"
grep -q '"hits"' "$WORK/stats.json"
if grep -q '"hits": 0,' "$WORK/stats.json"; then
  echo "FAIL: cache never hit" >&2
  cat "$WORK/stats.json" >&2
  exit 1
fi

echo "== graceful shutdown drains"
"$CLIENT" --port-file="$PORT_FILE" --shutdown
wait "$DAEMON_PID"
DAEMON_PID=
grep -q "drained; bye" "$DAEMON_LOG"

echo "serve smoke: PASS"
