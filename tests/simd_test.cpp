// Bitwise-exactness wall for the SIMD kernels (pp/simd.hpp).
//
// The dispatched kernels (AVX2 / NEON / scalar, a configure-time choice via
// -DSSR_SIMD=...) must be *bit-identical* to the always-compiled scalar
// reference in ssr::simd::scalar -- the batched engine's pair stream is
// seed-pinned, so even a one-in-2^64 rounding difference in the divider
// would silently fork trajectories between builds.  Every comparison here
// sweeps the lane-remainder edge: counts from 0 through several multiples
// of lane_width plus every remainder, so the vector body, the scalar tail,
// and their seam are all covered no matter which backend was configured.
//
// The scalar reference itself is checked against first principles: the
// divider against native 64-bit division on adversarial divisors, the
// Lemire map against uniform_below's accept rule on a copied RNG, and the
// pair decode against the sample_pair formula.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "pp/random.hpp"
#include "pp/rng.hpp"
#include "pp/simd.hpp"

namespace ssr {
namespace {

std::vector<std::uint64_t> random_words(rng_t& rng, std::size_t count) {
  std::vector<std::uint64_t> words(count);
  for (auto& w : words) w = rng();
  return words;
}

// Counts covering 0, each lane remainder, and a few full vector bodies.
std::vector<std::size_t> remainder_counts() {
  std::vector<std::size_t> counts;
  for (std::size_t c = 0; c <= 3 * simd::lane_width + 2; ++c)
    counts.push_back(c);
  counts.push_back(8 * simd::lane_width + 1);
  counts.push_back(257);
  return counts;
}

TEST(Simd, BackendSelectionIsCoherent) {
  if (simd::backend_name == "scalar") {
    EXPECT_EQ(simd::lane_width, 1u);
  } else {
    EXPECT_GT(simd::lane_width, 1u);
  }
}

TEST(Simd, DividerMatchesNativeDivision) {
  rng_t rng(31);
  std::vector<std::uint64_t> divisors = {
      1, 2, 3, 5, 6, 7, 10, 11, 31, 100, 641, 65'537,
      // n(n-1) shapes the engines actually divide by.
      std::uint64_t{100} * 99, std::uint64_t{1'000'000} * 999'999,
      std::numeric_limits<std::uint64_t>::max(),
      std::numeric_limits<std::uint64_t>::max() - 1,
  };
  for (std::uint32_t k = 0; k < 64; ++k)
    divisors.push_back(std::uint64_t{1} << k);  // every power of two
  for (int i = 0; i < 40; ++i) divisors.push_back(rng() | 1);
  for (const std::uint64_t d : divisors) {
    const simd::u64_divider divider(d);
    EXPECT_EQ(divider.divisor(), d);
    std::vector<std::uint64_t> numerators = {
        0, 1, d - 1, d, d + 1, d * 2 - 1, d * 2,
        std::numeric_limits<std::uint64_t>::max(),
        std::numeric_limits<std::uint64_t>::max() - 1,
    };
    for (int i = 0; i < 50; ++i) numerators.push_back(rng());
    for (const std::uint64_t x : numerators) {
      ASSERT_EQ(divider.divide(x), x / d) << "x=" << x << " d=" << d;
    }
  }
}

TEST(Simd, DividerRejectsZero) {
  EXPECT_THROW(simd::u64_divider(0), std::logic_error);
}

TEST(Simd, LemireMapMatchesScalarReferenceBitwise) {
  rng_t rng(37);
  const std::uint64_t bounds[] = {
      1, 2, 3, 7, 24 * 23, 1'000'000, (std::uint64_t{1} << 33) - 1,
      std::numeric_limits<std::uint64_t>::max() - 1,
  };
  for (const std::uint64_t bound : bounds) {
    for (const std::size_t count : remainder_counts()) {
      const auto raw = random_words(rng, count);
      std::vector<std::uint64_t> value_v(count), value_s(count);
      std::vector<std::uint8_t> accept_v(count), accept_s(count);
      simd::lemire_map(raw.data(), count, bound, value_v.data(),
                       accept_v.data());
      simd::scalar::lemire_map(raw.data(), count, bound, value_s.data(),
                               accept_s.data());
      EXPECT_EQ(value_v, value_s) << "bound=" << bound << " count=" << count;
      EXPECT_EQ(accept_v, accept_s) << "bound=" << bound
                                    << " count=" << count;
    }
  }
}

TEST(Simd, LemireMapImplementsUniformBelowAcceptRule) {
  // Feeding the same word stream through the kernel and through
  // uniform_below must yield the same accepted values: the kernel's accept
  // flag and mapped value are uniform_below's rejection loop, unrolled.
  const std::uint64_t bounds[] = {2, 3, 10, 24 * 23, 1'000'000'007};
  for (const std::uint64_t bound : bounds) {
    rng_t rng(500 + bound);
    rng_t rng_copy = rng;
    const std::size_t kDraws = 200;
    // Pull enough raw words to cover kDraws accepted values (rejection rate
    // is < 50% for any bound, so 3x is generous; assert we never run out).
    const auto raw = random_words(rng, 8 * kDraws);
    std::vector<std::uint64_t> value(raw.size());
    std::vector<std::uint8_t> accept(raw.size());
    simd::lemire_map(raw.data(), raw.size(), bound, value.data(),
                     accept.data());
    std::size_t cursor = 0;
    for (std::size_t draw = 0; draw < kDraws; ++draw) {
      const std::uint64_t expected = uniform_below(rng_copy, bound);
      while (cursor < raw.size() && accept[cursor] == 0) ++cursor;
      ASSERT_LT(cursor, raw.size()) << "raw word pool exhausted";
      EXPECT_EQ(value[cursor], expected)
          << "bound=" << bound << " draw=" << draw;
      ++cursor;
    }
  }
}

TEST(Simd, DecodeMatchesScalarReferenceBitwise) {
  rng_t rng(41);
  for (const std::uint64_t m : {1ull, 2ull, 7ull, 23ull, 999ull,
                                999'999ull}) {
    const simd::u64_divider cols(m);
    const std::uint64_t space = m * (m + 1);  // pair indices over {0..m}
    for (const std::size_t count : remainder_counts()) {
      std::vector<std::uint64_t> k(count);
      for (auto& x : k) x = uniform_below(rng, space);
      std::vector<std::uint64_t> iv(count), jv(count), is(count), js(count);
      simd::decode_ordered_distinct(k.data(), count, cols, iv.data(),
                                    jv.data());
      simd::scalar::decode_ordered_distinct(k.data(), count, cols, is.data(),
                                            js.data());
      EXPECT_EQ(iv, is) << "m=" << m << " count=" << count;
      EXPECT_EQ(jv, js) << "m=" << m << " count=" << count;
    }
  }
}

TEST(Simd, DecodeProducesOrderedDistinctPairs) {
  // Exhaustive over a small pair space: k in [0, n(n-1)) with cols = n - 1
  // must hit every ordered distinct pair over [0, n) exactly once -- the
  // sample_pair decode (i = k / cols, j = k mod cols, j += (j >= i)).
  const std::uint64_t n = 13;
  const simd::u64_divider cols(n - 1);
  const std::uint64_t space = n * (n - 1);
  std::vector<std::uint64_t> k(space);
  for (std::uint64_t x = 0; x < space; ++x) k[x] = x;
  std::vector<std::uint64_t> i(space), j(space);
  simd::decode_ordered_distinct(k.data(), space, cols, i.data(), j.data());
  std::vector<int> hits(n * n, 0);
  for (std::uint64_t x = 0; x < space; ++x) {
    ASSERT_LT(i[x], n);
    ASSERT_LT(j[x], n);
    ASSERT_NE(i[x], j[x]);
    ++hits[i[x] * n + j[x]];
  }
  for (std::uint64_t a = 0; a < n; ++a) {
    for (std::uint64_t b = 0; b < n; ++b) {
      EXPECT_EQ(hits[a * n + b], a == b ? 0 : 1)
          << "pair (" << a << "," << b << ")";
    }
  }
}

TEST(Simd, SumMatchesScalarIncludingWraparound) {
  rng_t rng(43);
  for (const std::size_t count : remainder_counts()) {
    auto v = random_words(rng, count);  // large words: sums wrap mod 2^64
    EXPECT_EQ(simd::sum_u64(v.data(), count),
              simd::scalar::sum_u64(v.data(), count))
        << "count=" << count;
    std::uint64_t expected = 0;
    for (const std::uint64_t x : v) expected += x;
    EXPECT_EQ(simd::sum_u64(v.data(), count), expected);
  }
}

}  // namespace
}  // namespace ssr
