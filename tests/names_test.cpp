#include "protocols/names.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace ssr {
namespace {

name_t from_string(const std::string& bits) {
  name_t n;
  for (const char c : bits) n.append_bit(c == '1');
  return n;
}

TEST(Name, EmptyName) {
  const name_t n;
  EXPECT_TRUE(n.empty());
  EXPECT_EQ(n.length(), 0u);
  EXPECT_EQ(n.to_string(), "ε");
}

TEST(Name, AppendAndRender) {
  const name_t n = from_string("0101");
  EXPECT_EQ(n.length(), 4u);
  EXPECT_EQ(n.to_string(), "0101");
}

TEST(Name, EqualityIsLengthAndBits) {
  EXPECT_EQ(from_string("01"), from_string("01"));
  EXPECT_NE(from_string("01"), from_string("010"));
  EXPECT_NE(from_string("01"), from_string("10"));
  // leading zeros matter: "001" != "01"
  EXPECT_NE(from_string("001"), from_string("01"));
}

TEST(Name, LexicographicOrder) {
  // bitwise comparison on the common prefix...
  EXPECT_LT(from_string("0"), from_string("1"));
  EXPECT_LT(from_string("01"), from_string("10"));
  EXPECT_LT(from_string("011"), from_string("10"));
  // ...and a proper prefix sorts before its extensions.
  EXPECT_LT(from_string("01"), from_string("010"));
  EXPECT_LT(from_string("01"), from_string("011"));
  EXPECT_LT(name_t{}, from_string("0"));
}

TEST(Name, OrderIsStrictTotalOrder) {
  // Exhaustive check over all bitstrings of length <= 4: trichotomy and
  // transitivity via sorted uniqueness.
  std::vector<name_t> all;
  all.push_back(name_t{});
  for (int len = 1; len <= 4; ++len) {
    for (int v = 0; v < (1 << len); ++v) {
      name_t n;
      for (int b = len - 1; b >= 0; --b) n.append_bit((v >> b) & 1);
      all.push_back(n);
    }
  }
  std::sort(all.begin(), all.end());
  for (std::size_t i = 0; i + 1 < all.size(); ++i) {
    EXPECT_LT(all[i], all[i + 1]);  // strictly increasing => all distinct
  }
  EXPECT_EQ(all.size(), 1u + 2 + 4 + 8 + 16);
}

TEST(Name, FullNameBits) {
  EXPECT_EQ(full_name_bits(8), 9u);    // 3 * log2(8)
  EXPECT_EQ(full_name_bits(9), 12u);   // 3 * ceil(log2 9)
  EXPECT_EQ(full_name_bits(1024), 30u);
}

TEST(Name, RandomNamesHaveRequestedLength) {
  rng_t rng(1);
  const name_t n = random_name(rng, 12);
  EXPECT_EQ(n.length(), 12u);
}

TEST(Name, RandomFullNamesRarelyCollide) {
  // With 3 log2 n bits, n draws collide with probability ~n^2/(2 n^3); for
  // n = 256 that's ~0.2% per trial.  Check that 64 populations of distinct
  // draws produce at most a couple of collisions.
  rng_t rng(99);
  const std::uint32_t n = 256;
  const std::uint32_t bits = full_name_bits(n);
  int collisions = 0;
  for (int trial = 0; trial < 64; ++trial) {
    std::set<name_t> seen;
    for (std::uint32_t i = 0; i < n; ++i) seen.insert(random_name(rng, bits));
    if (seen.size() != n) ++collisions;
  }
  EXPECT_LE(collisions, 3);
}

}  // namespace
}  // namespace ssr
