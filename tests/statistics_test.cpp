#include "analysis/statistics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ssr {
namespace {

TEST(Statistics, MeanAndSpread) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Statistics, SingleElementSample) {
  const std::vector<double> xs{3.5};
  const summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.p99, 3.5);
}

TEST(Statistics, EmptySampleRejected) {
  const std::vector<double> xs;
  EXPECT_THROW(summarize(xs), std::logic_error);
}

TEST(Quantile, MedianOfOddSample) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  // type-7: position = 0.5 * 3 = 1.5 -> midpoint of 2 and 3.
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> xs{4.0, 2.0, 8.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 8.0);
}

TEST(Quantile, RejectsOutOfRange) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(quantile(xs, 1.5), std::logic_error);
}

TEST(Statistics, ConfidenceIntervalShrinksWithSamples) {
  std::vector<double> small(10, 0.0), large(1000, 0.0);
  for (std::size_t i = 0; i < small.size(); ++i)
    small[i] = static_cast<double>(i % 2);
  for (std::size_t i = 0; i < large.size(); ++i)
    large[i] = static_cast<double>(i % 2);
  EXPECT_GT(ci95_halfwidth(summarize(small)),
            ci95_halfwidth(summarize(large)));
}

}  // namespace
}  // namespace ssr
