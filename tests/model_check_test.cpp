// Tests for the exact configuration-space model checker
// (verify/model_check) and its linter surface (analysis/protocol_lint/
// model_check.hpp): exact expected-time values pinned against hand
// computation, conservation invariants of the weighted configuration
// graph, agreement with the boolean reachability verifier, and the broken
// fixtures tripping exactly the L014-L017 codes they were built for.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/protocol_lint/lint.hpp"
#include "analysis/protocol_lint/model_check.hpp"
#include "protocols/silent_n_state.hpp"
#include "verify/model_check/config_space.hpp"
#include "verify/model_check/model_check.hpp"
#include "verify/reachability.hpp"

namespace ssr {
namespace {

verify::config_graph baseline_graph(std::uint32_t n) {
  const silent_n_state_ssr p(n);
  return verify::build_ranking_config_graph(p, p.all_states());
}

// Protocol 1 at n=2 has three configurations {00, 01, 11}; the two
// equal-rank ones each move to the correct one with their full pair weight,
// so the expected absorption time is exactly one interaction from either,
// and 1/2 under the uniform initial distribution (the correct configuration
// has probability 1/2).
TEST(ModelCheck, BaselineAtTwoAgentsExactly) {
  const verify::config_graph g = baseline_graph(2);
  const verify::model_check_result r = verify::run_model_check(g);
  EXPECT_EQ(r.configurations, 3u);
  EXPECT_EQ(r.terminal_classes, 1u);
  EXPECT_TRUE(r.silent);
  EXPECT_TRUE(r.self_stabilizing);
  ASSERT_TRUE(r.expected_time_computed);
  EXPECT_DOUBLE_EQ(r.worst_expected_interactions, 1.0);
  EXPECT_NEAR(r.uniform_expected_interactions, 0.5, 1e-12);
  EXPECT_EQ(r.solve_residual, 0.0);
  EXPECT_FALSE(r.silence_counterexample.has_value());
  EXPECT_FALSE(r.stabilization_counterexample.has_value());
  EXPECT_TRUE(r.spurious_terminal_witnesses.empty());
}

TEST(ModelCheck, UniformInitialProbabilitiesSumToOne) {
  for (const std::uint32_t n : {2u, 3u, 4u, 5u}) {
    const verify::config_graph g = baseline_graph(n);
    double total = 0.0;
    for (std::size_t c = 0; c < g.configs.size(); ++c) {
      total += g.uniform_initial_probability(c);
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "n=" << n;
  }
}

// Every configuration's outgoing mass -- weighted edges plus null pairs --
// must account for all n(n-1) ordered agent pairs.
TEST(ModelCheck, PairWeightsAreConserved) {
  const verify::config_graph g = baseline_graph(4);
  for (std::size_t c = 0; c < g.configs.size(); ++c) {
    std::uint64_t mass = g.null_weight[c];
    for (const verify::config_edge& e : g.edges[c]) mass += e.weight;
    EXPECT_EQ(mass, g.pair_weight()) << g.config_name(c);
  }
}

// The exact expectations satisfy the absorption fixed point
//   W * t_i = W + null_i * t_i + sum_e w_e * t_target(e)
// at every transient configuration, and vanish on the absorbing set.
TEST(ModelCheck, ExpectedTimesSatisfyTheFixedPoint) {
  const verify::config_graph g = baseline_graph(4);
  const verify::model_check_result r = verify::run_model_check(g);
  ASSERT_TRUE(r.expected_time_computed);
  const double w = static_cast<double>(g.pair_weight());
  for (std::size_t c = 0; c < g.configs.size(); ++c) {
    const double t = r.expected_interactions[c];
    if (t == 0.0) continue;
    double rhs = w + static_cast<double>(g.null_weight[c]) * t;
    for (const verify::config_edge& e : g.edges[c]) {
      rhs += static_cast<double>(e.weight) *
             r.expected_interactions[e.target];
    }
    EXPECT_NEAR(w * t, rhs, 1e-7 * w) << g.config_name(c);
  }
}

// The model checker and the boolean reachability verifier answer the same
// question; their verdicts and configuration counts must agree.
TEST(ModelCheck, AgreesWithReachabilityVerifier) {
  const silent_n_state_ssr p(4);
  const verification_result boolean =
      verify_self_stabilization(p, p.all_states());
  const verify::model_check_result exact =
      verify::run_model_check(baseline_graph(4));
  EXPECT_EQ(exact.configurations, boolean.configurations);
  EXPECT_EQ(exact.terminal_classes, boolean.terminal_components);
  EXPECT_EQ(exact.silent, boolean.silent);
  EXPECT_EQ(exact.self_stabilizing, boolean.self_stabilizing);
}

// ---- linter surface ------------------------------------------------------

std::vector<lint::finding> model_findings(const std::string& name,
                                          std::uint32_t n) {
  const lint::protocol_entry& entry = lint::resolve_protocol_entry(name);
  std::vector<lint::finding> findings;
  lint::lint_context ctx(entry.name, n, &findings);
  const std::optional<lint::model_run> run = lint::run_entry_model(entry, n);
  if (run.has_value()) lint::emit_model_findings(*run, ctx);
  return findings;
}

bool has_finding(const std::vector<lint::finding>& findings,
                 lint::finding_code code, lint::severity sev) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const lint::finding& f) {
                       return f.code == code && f.sev == sev;
                     });
}

TEST(ModelCheckLint, VisibleEntriesRaiseNoModelErrors) {
  for (const char* name : {"baseline", "optimal", "loose"}) {
    const std::vector<lint::finding> findings = model_findings(name, 3);
    for (const lint::finding& f : findings) {
      EXPECT_NE(f.sev, lint::severity::error) << to_line(f);
      EXPECT_NE(f.sev, lint::severity::warning) << to_line(f);
    }
  }
}

TEST(ModelCheckLint, HotClassFixtureTripsExhaustiveSilence) {
  const std::vector<lint::finding> findings =
      model_findings("broken-hot-class", 2);
  EXPECT_TRUE(has_finding(findings, lint::finding_code::exhaustive_silence,
                          lint::severity::error));
}

TEST(ModelCheckLint, RegressingRankFixtureTripsExhaustiveStabilization) {
  const std::vector<lint::finding> findings =
      model_findings("broken-regressing-rank", 3);
  EXPECT_TRUE(has_finding(findings,
                          lint::finding_code::exhaustive_stabilization,
                          lint::severity::error));
}

TEST(ModelCheckLint, BudgetFixtureTripsExpectedTimeBudget) {
  const std::vector<lint::finding> findings =
      model_findings("broken-time-budget", 3);
  EXPECT_TRUE(has_finding(findings, lint::finding_code::expected_time_budget,
                          lint::severity::error));
  // The dynamics are the clean baseline's: only the budget claim is broken.
  EXPECT_FALSE(has_finding(findings, lint::finding_code::exhaustive_silence,
                           lint::severity::error));
}

TEST(ModelCheckLint, IsolatedClassFixtureNotesSpuriousTerminal) {
  const std::vector<lint::finding> findings =
      model_findings("broken-isolated-class", 2);
  EXPECT_TRUE(has_finding(findings,
                          lint::finding_code::spurious_terminal_class,
                          lint::severity::note));
  for (const lint::finding& f : findings) {
    EXPECT_NE(f.sev, lint::severity::error) << to_line(f);
  }
}

TEST(ModelCheckLint, HotClassCounterexampleIsACycleAtTheWitness) {
  const lint::protocol_entry& entry =
      lint::resolve_protocol_entry("broken-hot-class");
  const std::optional<lint::model_run> run = lint::run_entry_model(entry, 2);
  ASSERT_TRUE(run.has_value());
  ASSERT_TRUE(run->result.silence_counterexample.has_value());
  const verify::counterexample& cx = *run->result.silence_counterexample;
  EXPECT_EQ(cx.kind, verify::counterexample::kind_t::hot_terminal);
  ASSERT_FALSE(cx.steps.empty());
  EXPECT_EQ(cx.steps.front().from_config, cx.witness);
  EXPECT_EQ(cx.steps.back().to_config, cx.witness);
  // The rendered form names the witness configuration.
  const std::string text = lint::describe_counterexample(run->graph, cx);
  EXPECT_NE(text.find(run->graph.config_name(cx.witness)),
            std::string::npos);

  std::ostringstream trace;
  verify::write_counterexample_jsonl(trace, run->graph, cx);
  EXPECT_NE(trace.str().find("trace_header"), std::string::npos);
  EXPECT_NE(trace.str().find("phase_transition"), std::string::npos);
}

TEST(ModelCheckLint, SkipReasonsNameTheCause) {
  lint::model_skip skip;
  const std::optional<lint::model_run> no_model = lint::run_entry_model(
      lint::resolve_protocol_entry("sublinear-h0"), 2, &skip);
  EXPECT_FALSE(no_model.has_value());
  EXPECT_NE(skip.reason.find("no model attachment"), std::string::npos);

  const std::optional<lint::model_run> too_big = lint::run_entry_model(
      lint::resolve_protocol_entry("baseline"), 9, &skip);
  EXPECT_FALSE(too_big.has_value());
  EXPECT_NE(skip.reason.find("max_n"), std::string::npos);
}

TEST(ModelCheckLint, JsonDocumentCarriesSchemaAndSummary) {
  const lint::protocol_entry& entry = lint::resolve_protocol_entry("baseline");
  std::vector<lint::finding> findings;
  lint::lint_context ctx(entry.name, 3, &findings);
  std::optional<lint::model_run> run = lint::run_entry_model(entry, 3);
  ASSERT_TRUE(run.has_value());
  lint::emit_model_findings(*run, ctx);

  std::vector<lint::model_run> runs;
  runs.push_back(std::move(*run));
  const std::string doc =
      lint::modelcheck_to_json(runs, {}, findings, /*strict=*/true).dump(2);
  EXPECT_NE(doc.find("\"schema\": \"ssr.modelcheck\""), std::string::npos);
  EXPECT_NE(doc.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"worst_interactions\""), std::string::npos);
  EXPECT_NE(doc.find("\"passed\": true"), std::string::npos);
}

}  // namespace
}  // namespace ssr
