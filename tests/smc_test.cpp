#include "verify/smc.hpp"

#include <gtest/gtest.h>

#include "pp/convergence.hpp"
#include "pp/random.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"

namespace ssr {
namespace {

// Synthetic Bernoulli oracle with known p.
std::function<bool(std::uint64_t)> bernoulli_oracle(double p) {
  return [p](std::uint64_t seed) {
    rng_t rng(seed);
    return bernoulli(rng, p);
  };
}

TEST(Smc, AcceptsClearlyTrueClaim) {
  smc_options opt;
  opt.theta = 0.9;
  const auto r = sequential_probability_test(bernoulli_oracle(0.99), opt, 1);
  EXPECT_EQ(r.verdict, smc_verdict::holds);
  EXPECT_LT(r.samples, 500u);  // sequential: cheap when the truth is clear
}

TEST(Smc, RejectsClearlyFalseClaim) {
  smc_options opt;
  opt.theta = 0.9;
  const auto r = sequential_probability_test(bernoulli_oracle(0.5), opt, 2);
  EXPECT_EQ(r.verdict, smc_verdict::violated);
  EXPECT_LT(r.samples, 100u);
}

TEST(Smc, UndecidedInsideIndifferenceRegion) {
  smc_options opt;
  opt.theta = 0.5;
  opt.delta = 0.02;
  opt.max_samples = 50;  // too few to leave the region at p = theta
  const auto r = sequential_probability_test(bernoulli_oracle(0.5), opt, 3);
  EXPECT_EQ(r.verdict, smc_verdict::undecided);
  EXPECT_EQ(r.samples, 50u);
}

TEST(Smc, HarderClaimsNeedMoreSamples) {
  smc_options wide;
  wide.theta = 0.7;
  wide.delta = 0.2;
  smc_options narrow = wide;
  narrow.delta = 0.02;
  const auto easy =
      sequential_probability_test(bernoulli_oracle(0.95), wide, 4);
  const auto hard =
      sequential_probability_test(bernoulli_oracle(0.95), narrow, 4);
  ASSERT_EQ(easy.verdict, smc_verdict::holds);
  ASSERT_EQ(hard.verdict, smc_verdict::holds);
  EXPECT_LT(easy.samples, hard.samples);
}

TEST(Smc, RejectsBadOptions) {
  smc_options opt;
  opt.theta = 0.99;
  opt.delta = 0.05;  // theta + delta > 1
  EXPECT_THROW(
      sequential_probability_test(bernoulli_oracle(0.5), opt, 1),
      std::logic_error);
}

TEST(Smc, VerdictNames) {
  EXPECT_EQ(to_string(smc_verdict::holds), "holds");
  EXPECT_EQ(to_string(smc_verdict::violated), "violated");
}

// --- protocol-level quantitative claims ------------------------------------

TEST(Smc, OptimalSilentStabilizesFastWhp) {
  // Claim: from uniform-random corruption at n = 48, Optimal-Silent-SSR
  // stabilizes within 3000 parallel time units with probability >= 0.9.
  // (E1 measured mean ~460 at n = 48-64, p99 well below 1000.)
  const std::uint32_t n = 48;
  smc_options opt;
  opt.theta = 0.9;
  const auto r = sequential_probability_test(
      [&](std::uint64_t seed) {
        optimal_silent_ssr p(n);
        rng_t rng(seed ^ 0xa5a5);
        auto init = adversarial_configuration(
            p, optimal_silent_scenario::uniform_random, rng);
        convergence_options copt;
        copt.max_parallel_time = 3000.0;
        return measure_convergence(p, std::move(init), seed, copt).converged;
      },
      opt, 10);
  EXPECT_EQ(r.verdict, smc_verdict::holds)
      << r.successes << "/" << r.samples;
}

TEST(Smc, BaselineCannotStabilizeInLinearTime) {
  // Converse claim, refuted: the Theta(n^2) baseline does NOT stabilize
  // within 2n time units with probability >= 0.5 at n = 64.
  const std::uint32_t n = 64;
  smc_options opt;
  opt.theta = 0.5;
  opt.delta = 0.1;
  const auto r = sequential_probability_test(
      [&](std::uint64_t seed) {
        silent_n_state_ssr p(n);
        rng_t rng(seed ^ 0x5a5a);
        auto init = adversarial_configuration(p, rng);
        convergence_options copt;
        copt.max_parallel_time = 2.0 * n;
        return measure_convergence(p, std::move(init), seed, copt).converged;
      },
      opt, 20);
  EXPECT_EQ(r.verdict, smc_verdict::violated)
      << r.successes << "/" << r.samples;
}

}  // namespace
}  // namespace ssr
