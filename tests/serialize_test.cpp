#include "protocols/serialize.hpp"

#include <gtest/gtest.h>

#include "pp/scheduler.hpp"
#include "protocols/adversary.hpp"

namespace ssr {
namespace {

name_t nm(const std::string& bits) {
  name_t n;
  for (const char c : bits) n.append_bit(c == '1');
  return n;
}

TEST(Serialize, BaselineRoundTrip) {
  silent_n_state_ssr p(6);
  rng_t rng(1);
  const auto config = adversarial_configuration(p, rng);
  const std::string text = to_text(p, config);
  const auto parsed = config_from_text(p, text);
  EXPECT_EQ(parsed, config);
}

TEST(Serialize, OptimalRoundTripAllScenarios) {
  optimal_silent_ssr p(8);
  rng_t rng(2);
  for (const auto scenario : {optimal_silent_scenario::uniform_random,
                              optimal_silent_scenario::valid_ranking,
                              optimal_silent_scenario::all_dormant_followers,
                              optimal_silent_scenario::no_leader}) {
    const auto config = adversarial_configuration(p, scenario, rng);
    const auto parsed = config_from_text(p, to_text(p, config));
    EXPECT_EQ(parsed, config) << to_string(scenario);
  }
}

TEST(Serialize, SublinearRoundTripWithTrees) {
  sublinear_time_ssr p(6, 2u);
  rng_t rng(3);
  for (const auto scenario : {sublinear_scenario::uniform_random,
                              sublinear_scenario::planted_histories,
                              sublinear_scenario::mid_reset,
                              sublinear_scenario::valid_ranking}) {
    const auto config = adversarial_configuration(p, scenario, rng);
    const std::string text = to_text(p, config);
    const auto parsed = config_from_text(p, text);
    ASSERT_EQ(parsed.size(), config.size()) << to_string(scenario);
    for (std::size_t i = 0; i < config.size(); ++i) {
      EXPECT_EQ(parsed[i].role, config[i].role);
      EXPECT_EQ(parsed[i].name, config[i].name);
      EXPECT_EQ(parsed[i].rank, config[i].rank);
      EXPECT_EQ(parsed[i].roster, config[i].roster);
      EXPECT_EQ(parsed[i].reset, config[i].reset);
      EXPECT_EQ(tree_to_text(parsed[i].tree), tree_to_text(config[i].tree));
    }
  }
}

TEST(Serialize, LooseRoundTrip) {
  loose_stabilizing_le p(5, 9);
  std::vector<loose_stabilizing_le::agent_state> config(5);
  config[0] = {true, 9};
  config[1] = {false, 3};
  config[2] = {false, 0};
  config[3] = {true, 7};
  config[4] = {false, 9};
  const auto parsed = config_from_text(p, to_text(p, config));
  EXPECT_EQ(parsed, config);
}

TEST(Serialize, TreeRoundTripPreservesStructure) {
  history_tree t(nm("01"));
  history_tree partner(nm("10"));
  history_tree deep(nm("11"));
  partner.graft_partner(deep, 1, 7, 42);
  t.graft_partner(partner, 2, 3, 99);
  const std::string text = tree_to_text(t);
  const history_tree parsed = tree_from_text(text);
  EXPECT_EQ(tree_to_text(parsed), text);
  EXPECT_EQ(parsed.root_name(), nm("01"));
  EXPECT_EQ(parsed.node_count(), t.node_count());
  EXPECT_EQ(parsed.depth(), t.depth());
}

TEST(Serialize, EmptyNameUsesPlaceholder) {
  history_tree t{name_t{}};
  EXPECT_EQ(tree_to_text(t), "(e)");
  const history_tree parsed = tree_from_text("(e)");
  EXPECT_TRUE(parsed.root_name().empty());
}

// Behavioral round-trip: pausing a run mid-flight, serializing, reloading
// and continuing with the same scheduler stream must reproduce the original
// run exactly.  This catches any field the textual format forgets.
TEST(Serialize, SnapshotResumeReproducesExecution) {
  const std::uint32_t n = 10;
  optimal_silent_ssr p(n);
  rng_t scenario_rng(9);
  auto agents = adversarial_configuration(
      p, optimal_silent_scenario::uniform_random, scenario_rng);

  // Run half-way.
  rng_t sched_a(1234);
  for (int step = 0; step < 5000; ++step) {
    const agent_pair pair = sample_pair(sched_a, n);
    p.interact(agents[pair.initiator], agents[pair.responder], sched_a);
  }
  // Snapshot and reload.
  auto resumed = config_from_text(p, to_text(p, agents));
  ASSERT_EQ(resumed, agents);

  // Continue both copies under identical scheduler streams.
  rng_t sched_b(777), sched_c(777);
  for (int step = 0; step < 5000; ++step) {
    const agent_pair pb = sample_pair(sched_b, n);
    p.interact(agents[pb.initiator], agents[pb.responder], sched_b);
    const agent_pair pc = sample_pair(sched_c, n);
    p.interact(resumed[pc.initiator], resumed[pc.responder], sched_c);
  }
  EXPECT_EQ(resumed, agents);
}

TEST(Serialize, SublinearSnapshotResumeReproducesExecution) {
  const std::uint32_t n = 8;
  sublinear_time_ssr p(n, 2u);
  rng_t scenario_rng(11);
  auto agents = adversarial_configuration(
      p, sublinear_scenario::single_collision, scenario_rng);

  rng_t sched_a(4321);
  for (int step = 0; step < 400; ++step) {
    const agent_pair pair = sample_pair(sched_a, n);
    p.interact(agents[pair.initiator], agents[pair.responder], sched_a);
  }
  auto resumed = config_from_text(p, to_text(p, agents));

  rng_t sched_b(555), sched_c(555);
  for (int step = 0; step < 400; ++step) {
    const agent_pair pb = sample_pair(sched_b, n);
    p.interact(agents[pb.initiator], agents[pb.responder], sched_b);
    const agent_pair pc = sample_pair(sched_c, n);
    p.interact(resumed[pc.initiator], resumed[pc.responder], sched_c);
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(resumed[i].role, agents[i].role) << i;
    EXPECT_EQ(resumed[i].name, agents[i].name) << i;
    EXPECT_EQ(resumed[i].rank, agents[i].rank) << i;
    EXPECT_EQ(resumed[i].roster, agents[i].roster) << i;
    EXPECT_EQ(tree_to_text(resumed[i].tree), tree_to_text(agents[i].tree))
        << i;
  }
}

TEST(Serialize, RejectsMalformedInput) {
  silent_n_state_ssr p(3);
  EXPECT_THROW(config_from_text(p, ""), std::invalid_argument);
  EXPECT_THROW(config_from_text(p, "bogus header\nrank=0\nrank=1\nrank=2\n"),
               std::invalid_argument);
  // Wrong protocol tag.
  EXPECT_THROW(config_from_text(
                   p, "ssr-config v1 protocol=optimal n=3\nrank=0\nrank=1\n"
                      "rank=2\n"),
               std::invalid_argument);
  // Wrong population size.
  EXPECT_THROW(config_from_text(
                   p, "ssr-config v1 protocol=baseline n=4\nrank=0\nrank=1\n"
                      "rank=2\n"),
               std::invalid_argument);
  // Out-of-range rank.
  EXPECT_THROW(config_from_text(
                   p, "ssr-config v1 protocol=baseline n=3\nrank=0\nrank=1\n"
                      "rank=9\n"),
               std::invalid_argument);
}

TEST(Serialize, RejectsMalformedTree) {
  EXPECT_THROW(tree_from_text(""), std::invalid_argument);
  EXPECT_THROW(tree_from_text("(01"), std::invalid_argument);
  EXPECT_THROW(tree_from_text("(01 (x 1 0 (10)))"), std::invalid_argument);
  EXPECT_THROW(tree_from_text("(01) junk"), std::invalid_argument);
}

TEST(Serialize, RejectsUnsortedRoster) {
  sublinear_time_ssr p(2, 1u);
  const std::string text =
      "ssr-config v1 protocol=sublinear n=2\n"
      "collecting name=01 rank=0 roster=10,01 tree=(01)\n"
      "collecting name=10 rank=0 roster=10 tree=(10)\n";
  EXPECT_THROW(config_from_text(p, text), std::invalid_argument);
}

}  // namespace
}  // namespace ssr
