// util/request_spec.hpp: the shared request parser every front end
// (ssr_cli, the benches, ssr_serve) goes through.  The golden-message
// tests here pin the exact diagnostics so a typo'd protocol prints the
// same error at the CLI, at a bench, and on the wire; the fingerprint
// tests pin the canonical() contract the serve result cache keys on.
#include "util/request_spec.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ssr::util {
namespace {

sim_request_spec must_finalize(spec_builder& builder) {
  const std::vector<spec_error> errors = builder.finalize();
  EXPECT_TRUE(errors.empty()) << render_errors(errors);
  return builder.spec();
}

TEST(RequestSpec, DefaultsAreValid) {
  spec_builder builder;
  const sim_request_spec spec = must_finalize(builder);
  EXPECT_EQ(spec.protocol, "optimal");
  EXPECT_EQ(spec.scenario, "uniform_random");
  EXPECT_EQ(spec.n, 32u);
  EXPECT_EQ(spec.engine.kind, engine_kind::direct);
}

TEST(RequestSpec, UnknownProtocolSuggestsNearest) {
  spec_builder builder;
  builder.set_protocol("basline");
  const auto errors = builder.finalize();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "protocol");
  EXPECT_EQ(errors[0].message,
            "unknown protocol 'basline' (did you mean baseline?)");
}

TEST(RequestSpec, ScenarioMustBelongToProtocol) {
  // single_collision exists, but only for sublinear -- selecting it under
  // optimal must fail rather than silently running a different scenario.
  spec_builder builder;
  builder.set_protocol("optimal");
  builder.set_scenario("single_collision");
  const auto errors = builder.finalize();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "scenario");
  EXPECT_NE(errors[0].message.find("unknown optimal scenario"),
            std::string::npos)
      << errors[0].message;
}

TEST(RequestSpec, LooseDefaultsItsOnlyScenario) {
  spec_builder builder;
  builder.set_protocol("loose");
  const sim_request_spec spec = must_finalize(builder);
  EXPECT_EQ(spec.scenario, "dead_configuration");
}

TEST(RequestSpec, ShardsRequireShardedEngine) {
  spec_builder builder;
  builder.set_shards(4);
  const auto errors = builder.finalize();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "shards");
  EXPECT_EQ(errors[0].message,
            "shards requires engine=sharded (got engine=direct)");
}

TEST(RequestSpec, ExplicitZeroShardsRejected) {
  spec_builder builder;
  builder.set_engine("sharded");
  builder.set_shards(0);
  const auto errors = builder.finalize();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "shards");
  EXPECT_EQ(errors[0].message,
            "shard count must be >= 1 (omit shards to use hardware "
            "concurrency)");
}

TEST(RequestSpec, ShardedWithExplicitShardsIsValid) {
  spec_builder builder;
  builder.set_engine("sharded");
  builder.set_shards(3);
  const sim_request_spec spec = must_finalize(builder);
  EXPECT_EQ(spec.engine.kind, engine_kind::sharded);
  EXPECT_EQ(spec.engine.shards, 3u);
}

TEST(RequestSpec, UnknownEngineSuggestsNearest) {
  spec_builder builder;
  builder.set_engine("shraded");
  const auto errors = builder.finalize();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "engine");
  EXPECT_EQ(errors[0].message,
            "unknown engine 'shraded' (did you mean sharded?)");
}

TEST(RequestSpec, NumericBoundsProduceStableFieldOrder) {
  spec_builder builder;
  builder.set_protocol("sublinear");
  builder.set_scenario("uniform_random");
  builder.set_n(1);
  builder.set_trials(0);
  builder.set_max_time(0.0);
  builder.set_h(0);
  const auto errors = builder.finalize();
  ASSERT_EQ(errors.size(), 4u);
  EXPECT_EQ(errors[0], (spec_error{"n", "population size must be at least 2"}));
  EXPECT_EQ(errors[1], (spec_error{"trials", "trial count must be positive"}));
  EXPECT_EQ(errors[2],
            (spec_error{"max_time", "parallel-time budget must be positive"}));
  EXPECT_EQ(errors[3],
            (spec_error{"h", "sublinear history depth must be at least 1"}));
}

TEST(RequestSpec, BadIntegerTextIsAFieldError) {
  spec_builder builder;
  builder.set_u64_text("n", "12x");
  const auto errors = builder.finalize();
  ASSERT_GE(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "n");
  EXPECT_EQ(errors[0].message, "expected an unsigned integer, got '12x'");
}

TEST(RequestSpec, BadMaxTimeTextIsAFieldError) {
  spec_builder builder;
  builder.set_max_time_text("fast");
  const auto errors = builder.finalize();
  ASSERT_GE(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "max_time");
  EXPECT_EQ(errors[0].message, "expected a number, got 'fast'");
}

TEST(RequestSpec, FinalizeIsIdempotent) {
  spec_builder builder;
  builder.set_protocol("basline");
  const auto first = builder.finalize();
  const auto second = builder.finalize();
  EXPECT_EQ(first, second);
}

TEST(RequestSpec, RenderErrorsJoinsWithSemicolons) {
  const std::vector<spec_error> errors = {{"n", "too small"},
                                          {"seed", "bad"}};
  EXPECT_EQ(render_errors(errors), "n: too small; seed: bad");
  EXPECT_EQ(render_errors({}), "");
}

TEST(RequestSpec, ParseU64Golden) {
  EXPECT_EQ(parse_u64("0"), std::uint64_t{0});
  EXPECT_EQ(parse_u64("42"), std::uint64_t{42});
  EXPECT_EQ(parse_u64(""), std::nullopt);
  EXPECT_EQ(parse_u64("-1"), std::nullopt);
  EXPECT_EQ(parse_u64("+3"), std::nullopt);
  EXPECT_EQ(parse_u64("1e3"), std::nullopt);
  EXPECT_EQ(parse_u64("12 "), std::nullopt);
}

TEST(RequestSpec, UnknownNameMessageDropsFarSuggestions) {
  EXPECT_EQ(unknown_name_message("protocol", "zzzzzzzzzz", protocol_names()),
            "unknown protocol 'zzzzzzzzzz'");
}

TEST(RequestSpec, NameTablesCoverEveryProtocol) {
  ASSERT_EQ(protocol_names().size(), 4u);
  for (const std::string_view protocol : protocol_names()) {
    EXPECT_FALSE(scenario_names(protocol).empty()) << protocol;
  }
  EXPECT_TRUE(scenario_names("bogus").empty());
}

// -- canonical() fingerprints: what the serve result cache keys on. ------

TEST(Fingerprint, MaterializesEveryDefault) {
  spec_builder builder;
  const sim_request_spec spec = must_finalize(builder);
  EXPECT_EQ(spec.canonical(),
            "protocol=optimal scenario=uniform_random n=32 trials=1 seed=1 "
            "max_time=10000000 engine=direct");
}

TEST(Fingerprint, SetterOrderIsIrrelevant) {
  spec_builder forward;
  forward.set_protocol("optimal");
  forward.set_n(64);
  forward.set_seed(7);
  spec_builder reverse;
  reverse.set_seed(7);
  reverse.set_n(64);
  reverse.set_protocol("optimal");
  EXPECT_EQ(must_finalize(forward).canonical(),
            must_finalize(reverse).canonical());
}

TEST(Fingerprint, OmitsHistoryDepthUnlessSublinear) {
  // h is dead weight for optimal: two requests differing only in h must
  // share a cache entry.
  spec_builder with_h;
  with_h.set_protocol("optimal");
  with_h.set_h(7);
  spec_builder without_h;
  without_h.set_protocol("optimal");
  EXPECT_EQ(must_finalize(with_h).canonical(),
            must_finalize(without_h).canonical());

  spec_builder sublinear;
  sublinear.set_protocol("sublinear");
  sublinear.set_h(2);
  EXPECT_NE(must_finalize(sublinear).canonical().find(" h=2"),
            std::string::npos);
}

TEST(Fingerprint, OmitsTimeoutUnlessLoose) {
  spec_builder optimal;
  optimal.set_protocol("optimal");
  optimal.set_t_max(99);
  EXPECT_EQ(must_finalize(optimal).canonical().find("t_max"),
            std::string::npos);

  spec_builder loose;
  loose.set_protocol("loose");
  loose.set_t_max(99);
  EXPECT_NE(must_finalize(loose).canonical().find(" t_max=99"),
            std::string::npos);
}

TEST(Fingerprint, OmitsShardsUnlessSharded) {
  spec_builder batched;
  batched.set_engine("batched");
  EXPECT_EQ(must_finalize(batched).canonical().find("shards"),
            std::string::npos);

  spec_builder sharded;
  sharded.set_engine("sharded");
  sharded.set_shards(2);
  EXPECT_NE(must_finalize(sharded).canonical().find(" engine=sharded shards=2"),
            std::string::npos);
}

TEST(Fingerprint, DistinguishesEveryMaterialField) {
  spec_builder base;
  const std::string key = must_finalize(base).canonical();
  const auto differs = [&](auto&& mutate) {
    spec_builder builder;
    mutate(builder);
    EXPECT_NE(must_finalize(builder).canonical(), key);
  };
  differs([](spec_builder& b) { b.set_n(33); });
  differs([](spec_builder& b) { b.set_seed(2); });
  differs([](spec_builder& b) { b.set_trials(2); });
  differs([](spec_builder& b) { b.set_scenario("no_leader"); });
  differs([](spec_builder& b) { b.set_engine("batched"); });
  differs([](spec_builder& b) { b.set_max_time(5e6); });
}

TEST(TelemetrySpec, DefaultsAreDetached) {
  telemetry_builder builder;
  EXPECT_TRUE(builder.finalize().empty());
  EXPECT_FALSE(builder.spec().any());
  EXPECT_FALSE(builder.spec().trace);
  EXPECT_FALSE(builder.spec().profile);
  EXPECT_EQ(builder.spec().trace_sample_every, 1u);
}

TEST(TelemetrySpec, AnyReflectsEitherChannel) {
  telemetry_builder traced;
  traced.set_trace_enabled(true);
  EXPECT_TRUE(traced.spec().any());

  telemetry_builder profiled;
  profiled.set_profile(true);
  EXPECT_TRUE(profiled.spec().any());
}

TEST(TelemetrySpec, TraceOptionsApplyByName) {
  telemetry_builder builder;
  builder.set_trace_enabled(true);
  builder.set_trace_option("sample_every", 8);
  builder.set_trace_option("max_events", 512);
  EXPECT_TRUE(builder.finalize().empty());
  EXPECT_EQ(builder.spec().trace_sample_every, 8u);
  EXPECT_EQ(builder.spec().trace_max_events, 512u);
}

TEST(TelemetrySpec, UnknownTraceOptionSuggestsNearest) {
  telemetry_builder builder;
  builder.set_trace_option("sample_evry", 2);
  const std::vector<spec_error> errors = builder.finalize();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].field, "trace.sample_evry");
  EXPECT_NE(errors[0].message.find("did you mean sample_every"),
            std::string::npos)
      << errors[0].message;
}

TEST(TelemetrySpec, ZeroesAreRejectedNotClamped) {
  telemetry_builder builder;
  builder.set_trace_enabled(true);
  builder.set_trace_option("sample_every", 0);
  builder.set_trace_option("max_events", 0);
  const std::vector<spec_error> errors = builder.finalize();
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0].field, "trace.sample_every");
  EXPECT_EQ(errors[1].field, "trace.max_events");
}

TEST(TelemetrySpec, FinalizeIsIdempotent) {
  telemetry_builder builder;
  builder.set_trace_option("bogus", 1);
  EXPECT_EQ(builder.finalize().size(), 1u);
  EXPECT_EQ(builder.finalize().size(), 1u);
}

}  // namespace
}  // namespace ssr::util
