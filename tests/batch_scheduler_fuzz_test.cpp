// Randomized property tests for pp/batch_scheduler.hpp, the block-sampling
// half of the batched engine.  Across random populations n in {2..17},
// capacities both below and far above the population size, and per-call
// limits both below and above the capacity, every emitted batch must be:
//
//   * valid    -- each pair an ordered pair of distinct agents in [0, n);
//   * prefix-independent -- only the final pair of a batch may revisit an
//                 agent used earlier in that batch, and exactly when the
//                 collision-truncation counter ticks;
//   * conserved -- batch sizes never exceed min(capacity, limit), at least
//                 one pair is emitted whenever limit >= 1, and the lifetime
//                 counters account for every pair.
//
// A final check runs the block engine end to end and verifies interaction
// budgets are hit exactly -- no drawn pair is dropped or double-counted at
// batch boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pp/batch_scheduler.hpp"
#include "pp/engine.hpp"
#include "pp/random.hpp"
#include "pp/rng.hpp"
#include "protocols/loose_stabilizing.hpp"

namespace {

using namespace ssr;

TEST(BatchSchedulerFuzz, EmittedBatchesAreValidPrefixIndependentAndConserved) {
  rng_t meta(0xfeedfacecafef00dULL);
  for (int trial = 0; trial < 300; ++trial) {
    const auto n = static_cast<std::uint32_t>(2 + uniform_below(meta, 16));
    // Capacity sweeps from tiny to far beyond the population (a batch can
    // never hold more than ~n/2 independent pairs, so large capacities
    // always end in a truncation or a limit cut).
    const auto capacity =
        static_cast<std::uint32_t>(1 + uniform_below(meta, 4 * n));
    batch_scheduler sched(n, capacity);
    ASSERT_EQ(sched.population_size(), n);
    ASSERT_EQ(sched.capacity(), capacity);

    rng_t rng(derive_seed(991, static_cast<std::uint64_t>(trial)));
    std::uint64_t emitted = 0, truncations = 0;
    std::vector<bool> used(n);
    for (int b = 0; b < 40; ++b) {
      // Limits from 0 to twice the capacity: exercises the
      // remaining-budget-smaller-than-batch path and the unconstrained one.
      const std::uint64_t limit = uniform_below(meta, 2 * capacity + 2);
      const auto batch = sched.next_batch(rng, limit);
      const std::uint64_t want = std::min<std::uint64_t>(capacity, limit);

      const std::uint64_t cut = sched.collision_truncations() - truncations;
      truncations = sched.collision_truncations();
      ASSERT_LE(cut, 1u);

      ASSERT_LE(batch.size(), want);
      if (limit >= 1) {
        ASSERT_GE(batch.size(), 1u);
      }
      if (cut == 0) {
        // Only a collision may cut a batch short of its target size.
        ASSERT_EQ(batch.size(), want);
      }

      std::fill(used.begin(), used.end(), false);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const agent_pair pair = batch[i];
        ASSERT_LT(pair.initiator, n);
        ASSERT_LT(pair.responder, n);
        ASSERT_NE(pair.initiator, pair.responder);
        const bool collides = used[pair.initiator] || used[pair.responder];
        if (i + 1 < batch.size()) {
          ASSERT_FALSE(collides)
              << "non-final pair revisits an agent at index " << i;
        } else if (collides) {
          ASSERT_EQ(cut, 1u)
              << "final pair collides but no truncation was recorded";
        }
        used[pair.initiator] = true;
        used[pair.responder] = true;
      }

      emitted += batch.size();
      ASSERT_EQ(sched.pairs_issued(), emitted);
      ASSERT_EQ(sched.batches_issued(), static_cast<std::uint64_t>(b + 1));
    }
  }
}

TEST(BatchSchedulerFuzz, BlockEngineHitsInteractionBudgetsExactly) {
  // loose stabilizing LE is not batch-countable, so batched_engine uses the
  // batch_scheduler block path; budgets that are not multiples of the batch
  // capacity must still be hit exactly via the limit parameter.
  const std::uint32_t n = 16;
  loose_stabilizing_le p(n, 10);
  batched_engine<loose_stabilizing_le> eng(p, p.dead_configuration(), 77);
  std::uint64_t surfaced = 0;
  const auto count_post = [&](const agent_pair&, bool) {
    ++surfaced;
    return false;
  };
  for (const std::uint64_t budget : {1ull, 2ull, 255ull, 256ull, 257ull,
                                     1000ull, 1003ull, 5000ull}) {
    const bool stopped =
        eng.run(budget, [](const agent_pair&) {}, count_post);
    EXPECT_FALSE(stopped);
    EXPECT_EQ(eng.interactions(), budget);
    // Every interaction in the block path is surfaced to the hooks.
    EXPECT_EQ(surfaced, budget);
  }
}

}  // namespace
