#include "protocols/optimal_silent.hpp"

#include <gtest/gtest.h>

#include "pp/convergence.hpp"
#include "pp/simulation.hpp"
#include "protocols/adversary.hpp"

namespace ssr {
namespace {

using role_t = optimal_silent_ssr::role_t;
using state_t = optimal_silent_ssr::agent_state;

state_t settled(std::uint32_t rank, std::uint8_t children = 0) {
  state_t s;
  s.role = role_t::settled;
  s.rank = rank;
  s.children = children;
  return s;
}

state_t unsettled(std::uint32_t errorcount) {
  state_t s;
  s.role = role_t::unsettled;
  s.errorcount = errorcount;
  return s;
}

TEST(OptimalSilent, RankCollisionTriggersReset) {
  optimal_silent_ssr p(8);
  rng_t rng(1);
  state_t a = settled(3);
  state_t b = settled(3);
  EXPECT_TRUE(p.interact(a, b, rng));
  EXPECT_EQ(a.role, role_t::resetting);
  EXPECT_EQ(b.role, role_t::resetting);
  EXPECT_EQ(a.reset.resetcount, p.params().r_max);
  EXPECT_TRUE(a.leader);
  EXPECT_TRUE(b.leader);
}

TEST(OptimalSilent, DistinctSettledRanksAreNull) {
  optimal_silent_ssr p(8);
  rng_t rng(1);
  state_t a = settled(3, 2);
  state_t b = settled(4, 2);
  EXPECT_FALSE(p.interact(a, b, rng));
  EXPECT_EQ(a.rank, 3u);
  EXPECT_EQ(b.rank, 4u);
}

TEST(OptimalSilent, RecruitmentAssignsBinaryTreeChildRanks) {
  optimal_silent_ssr p(12);
  rng_t rng(1);
  // Rank 3 with no children recruits child rank 6, then 7 (Figure 1).
  state_t parent = settled(3, 0);
  state_t child1 = unsettled(100);
  EXPECT_TRUE(p.interact(parent, child1, rng));
  EXPECT_EQ(child1.role, role_t::settled);
  EXPECT_EQ(child1.rank, 6u);
  EXPECT_EQ(parent.children, 1u);

  state_t child2 = unsettled(100);
  EXPECT_TRUE(p.interact(child2, parent, rng));  // order-independent
  EXPECT_EQ(child2.rank, 7u);
  EXPECT_EQ(parent.children, 2u);

  // A full parent recruits no more.
  state_t extra = unsettled(100);
  p.interact(parent, extra, rng);
  EXPECT_EQ(extra.role, role_t::unsettled);
}

// DESIGN.md deviation #1: rank n must be assignable (the paper's literal
// "< n" guard would leave the last agent Unsettled forever).
TEST(OptimalSilent, RankNIsAssignable) {
  const std::uint32_t n = 12;
  optimal_silent_ssr p(n);
  rng_t rng(1);
  state_t parent = settled(6, 0);  // children of 6 are 12 (=n) and 13 (>n)
  state_t child = unsettled(100);
  EXPECT_TRUE(p.interact(parent, child, rng));
  EXPECT_EQ(child.rank, 12u);
  EXPECT_EQ(parent.children, 1u);

  state_t another = unsettled(100);
  p.interact(parent, another, rng);
  EXPECT_EQ(another.role, role_t::unsettled);  // 13 > n: never assigned
}

TEST(OptimalSilent, LeafRanksRecruitNothing) {
  const std::uint32_t n = 8;
  optimal_silent_ssr p(n);
  rng_t rng(1);
  state_t leaf = settled(5, 0);  // children 10, 11 > 8
  state_t u = unsettled(100);
  EXPECT_TRUE(p.interact(leaf, u, rng));  // errorcount still decremented
  EXPECT_EQ(u.role, role_t::unsettled);
  EXPECT_EQ(u.errorcount, 99u);
}

TEST(OptimalSilent, UnsettledPatienceExpiryTriggersReset) {
  optimal_silent_ssr p(8);
  rng_t rng(1);
  state_t a = unsettled(1);
  state_t b = unsettled(50);
  EXPECT_TRUE(p.interact(a, b, rng));
  // a's errorcount hit 0 -> both agents reset (Protocol 3 lines 17-19).
  EXPECT_EQ(a.role, role_t::resetting);
  EXPECT_EQ(b.role, role_t::resetting);
}

TEST(OptimalSilent, SlowLeaderElectionDuel) {
  optimal_silent_ssr p(8);
  rng_t rng(1);
  state_t a, b;
  a.role = b.role = role_t::resetting;
  a.leader = b.leader = true;
  a.reset.resetcount = b.reset.resetcount = 5;
  p.interact(a, b, rng);
  // L,L -> L,F: exactly one leader remains.
  EXPECT_NE(a.leader, b.leader);
}

TEST(OptimalSilent, ResetRoutineSplitsLeaderAndFollowers) {
  optimal_silent_ssr p(8);
  rng_t rng(1);
  // A dormant leader meeting a computing agent awakens Settled rank 1.
  state_t leader;
  leader.role = role_t::resetting;
  leader.leader = true;
  leader.reset.resetcount = 0;
  leader.reset.delaytimer = 1;
  state_t follower;
  follower.role = role_t::resetting;
  follower.leader = false;
  follower.reset.resetcount = 0;
  follower.reset.delaytimer = 1;
  p.interact(leader, follower, rng);
  EXPECT_EQ(leader.role, role_t::settled);
  EXPECT_EQ(leader.rank, 1u);
  EXPECT_EQ(follower.role, role_t::unsettled);
  EXPECT_EQ(follower.errorcount, p.params().e_max);
}

TEST(OptimalSilent, ConvergesFromCleanStart) {
  const std::uint32_t n = 32;
  optimal_silent_ssr p(n);
  std::vector<state_t> final_config;
  convergence_options opt;
  opt.max_parallel_time = 1e6;
  const auto r =
      measure_convergence(p, p.initial_configuration(), 7, opt, &final_config);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(is_valid_ranking(p, final_config));
  EXPECT_EQ(leader_count(p, final_config), 1u);
}

TEST(OptimalSilent, CorrectConfigurationIsSilent) {
  const std::uint32_t n = 16;
  optimal_silent_ssr p(n);
  rng_t rng(3);
  const auto config = adversarial_configuration(
      p, optimal_silent_scenario::valid_ranking, rng);
  ASSERT_TRUE(is_valid_ranking(p, config));
  simulation<optimal_silent_ssr> sim(p, config, 1);
  EXPECT_TRUE(sim.is_silent_configuration());
}

TEST(OptimalSilent, StateCountIsLinear) {
  const auto t16 = optimal_silent_ssr::tuning::defaults(16);
  const auto t32 = optimal_silent_ssr::tuning::defaults(32);
  const auto s16 = optimal_silent_ssr::state_count(16, t16);
  const auto s32 = optimal_silent_ssr::state_count(32, t32);
  EXPECT_GT(s16, 16u);
  // O(n): doubling n at most ~doubles the state count (log terms aside).
  EXPECT_LT(static_cast<double>(s32) / static_cast<double>(s16), 2.5);
}

TEST(OptimalSilent, RejectsBadTuning) {
  optimal_silent_ssr::tuning t{};  // all zero
  EXPECT_THROW(optimal_silent_ssr(8, t), std::logic_error);
}

}  // namespace
}  // namespace ssr
