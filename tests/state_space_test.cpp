#include "protocols/state_space.hpp"

#include <gtest/gtest.h>

namespace ssr {
namespace {

TEST(StateSpace, BaselineIsExactlyN) {
  EXPECT_EQ(silent_n_state_states(100), 100u);
}

TEST(StateSpace, OptimalSilentGrowsLinearly) {
  const auto count = [](std::uint32_t n) {
    return static_cast<double>(
        optimal_silent_states(n, optimal_silent_ssr::tuning::defaults(n)));
  };
  // Ratio of consecutive doublings approaches 2 (linear growth).
  const double r1 = count(2048) / count(1024);
  const double r2 = count(4096) / count(2048);
  EXPECT_NEAR(r1, 2.0, 0.1);
  EXPECT_NEAR(r2, 2.0, 0.1);
}

TEST(StateSpace, OptimalSilentCountsRolesSeparately) {
  optimal_silent_ssr::tuning t;
  t.e_max = 10;
  t.r_max = 5;
  t.d_max = 7;
  // settled 3n + unsettled (E+1) + resetting 2(R + D + 1).
  EXPECT_EQ(optimal_silent_states(4, t), 12u + 11u + 2u * 13u);
}

TEST(StateSpace, SublinearBitsExplodeWithH) {
  const std::uint32_t n = 64;
  const auto bits = [&](std::uint32_t h) {
    return sublinear_state_bits(n, sublinear_time_ssr::tuning::defaults(n, h));
  };
  // Memory grows ~n^H: each extra level multiplies the tree term by n.
  EXPECT_GT(bits(2) / bits(1), 10.0);
  EXPECT_GT(bits(3) / bits(2), 10.0);
}

TEST(StateSpace, SublinearEvenH1IsExponentialStates) {
  // Theorem 5.1 / conclusion: even H = 1 needs a per-partner dictionary,
  // i.e. Omega(n log n) bits -- exponentially many states.
  const std::uint32_t n = 256;
  const double bits =
      sublinear_state_bits(n, sublinear_time_ssr::tuning::defaults(n, 1));
  EXPECT_GT(bits, static_cast<double>(n));  // >> log-space protocols
}

TEST(StateSpace, TableOneOrdering) {
  // For any n, baseline states < optimal-silent states << sublinear states.
  for (const std::uint32_t n : {16u, 64u, 256u}) {
    const double baseline = static_cast<double>(silent_n_state_states(n));
    const double optimal = static_cast<double>(
        optimal_silent_states(n, optimal_silent_ssr::tuning::defaults(n)));
    const double sublinear_bits =
        sublinear_state_bits(n, sublinear_time_ssr::tuning::defaults(n, 1));
    EXPECT_LT(baseline, optimal);
    EXPECT_LT(std::log2(optimal), sublinear_bits);
  }
}

}  // namespace
}  // namespace ssr
