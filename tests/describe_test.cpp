#include "protocols/describe.hpp"

#include <gtest/gtest.h>

#include "protocols/adversary.hpp"

namespace ssr {
namespace {

TEST(Describe, BaselineState) {
  silent_n_state_ssr p(8);
  silent_n_state_ssr::agent_state s{3};
  EXPECT_EQ(describe(p, s), "rank=4");  // formal rank space 1..n
}

TEST(Describe, OptimalSilentRoles) {
  optimal_silent_ssr p(8);
  optimal_silent_ssr::agent_state s;
  s.role = optimal_silent_ssr::role_t::settled;
  s.rank = 3;
  s.children = 1;
  EXPECT_EQ(describe(p, s), "Settled{rank=3, children=1}");

  s = {};
  s.role = optimal_silent_ssr::role_t::unsettled;
  s.errorcount = 12;
  EXPECT_EQ(describe(p, s), "Unsettled{errorcount=12}");

  s = {};
  s.role = optimal_silent_ssr::role_t::resetting;
  s.leader = true;
  s.reset = {5, 2};
  EXPECT_EQ(describe(p, s), "Resetting{L, resetcount=5, delaytimer=2}");
}

TEST(Describe, SublinearState) {
  sublinear_time_ssr p(4, 1u);
  rng_t rng(1);
  auto config = p.initial_configuration(rng);
  const std::string text = describe(p, config[0]);
  EXPECT_NE(text.find("Collecting{name="), std::string::npos);
  EXPECT_NE(text.find("|roster|=1"), std::string::npos);
}

TEST(Describe, LooseState) {
  loose_stabilizing_le p(4, 9);
  EXPECT_EQ(describe(p, {true, 9}), "Leader{timer=9}");
  EXPECT_EQ(describe(p, {false, 2}), "Follower{timer=2}");
}

TEST(Describe, SummariesReportCorrectness) {
  optimal_silent_ssr p(6);
  rng_t rng(2);
  const auto valid = adversarial_configuration(
      p, optimal_silent_scenario::valid_ranking, rng);
  EXPECT_NE(summarize_configuration(p, valid).find("VALID RANKING"),
            std::string::npos);
  const auto broken = adversarial_configuration(
      p, optimal_silent_scenario::duplicated_ranks, rng);
  EXPECT_NE(summarize_configuration(p, broken).find("not yet valid"),
            std::string::npos);
}

TEST(Describe, SummariesCountRoles) {
  optimal_silent_ssr p(6);
  rng_t rng(3);
  const auto dormant = adversarial_configuration(
      p, optimal_silent_scenario::all_dormant_followers, rng);
  const std::string text = summarize_configuration(p, dormant);
  EXPECT_NE(text.find("6 resetting"), std::string::npos);
  EXPECT_NE(text.find("0 leader candidates"), std::string::npos);
}

}  // namespace
}  // namespace ssr
