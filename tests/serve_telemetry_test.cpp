// Wire telemetry end to end, in process: traced/profiled run requests
// through serve::service, the golden shape of the in-band trace transport
// (and its byte-identical reconstruction of the JSONL artifact), the
// events.jsonl job journal schema across the job lifecycle, trace-option
// validation on the wire, the metrics exposition command, and -- under
// the same ServeTelemetry suite the TSan concurrency leg re-runs --
// concurrent telemetered requests sharing one service.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "serve/service.hpp"

namespace ssr::serve {
namespace {

service_options fast_options() {
  service_options options;
  options.workers = 2;
  options.max_queue_depth = 8;
  options.cache_capacity = 16;
  options.poll_interval = std::chrono::milliseconds{10};
  return options;
}

obs::json_value run_request(std::uint64_t n, std::uint64_t trials,
                            std::uint64_t seed) {
  obs::json_value request = obs::json_value::object();
  request["type"] = "run";
  request["protocol"] = "optimal";
  request["n"] = n;
  request["trials"] = trials;
  request["seed"] = seed;
  return request;
}

/// Every journal line parsed back, in order.
std::vector<obs::json_value> journal_lines(const std::string& text) {
  std::vector<obs::json_value> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::optional<obs::json_value> doc = obs::json_value::parse(line);
    EXPECT_TRUE(doc.has_value()) << "unparseable journal line: " << line;
    if (doc.has_value()) lines.push_back(std::move(*doc));
  }
  return lines;
}

const obs::json_value* find_event(const std::vector<obs::json_value>& lines,
                                  std::string_view name) {
  for (const obs::json_value& line : lines) {
    const obs::json_value* event = line.find("event");
    if (event != nullptr && event->is_string() && event->as_string() == name)
      return &line;
  }
  return nullptr;
}

/// The client-side reconstruction write_trace_jsonl (tools/ssr_client)
/// performs: header + events, one dump per line.
std::string reconstruct_jsonl(const obs::json_value& trace) {
  std::ostringstream os;
  os << trace.find("header")->dump() << '\n';
  for (const obs::json_value& event : trace.find("events")->items()) {
    os << event.dump() << '\n';
  }
  return os.str();
}

TEST(ServeTelemetry, TracedRunShipsGoldenInBandTrace) {
  service svc(fast_options());
  obs::json_value request = run_request(32, 2, 7);
  request["trace"] = true;
  const obs::json_value response = svc.handle(request);
  ASSERT_TRUE(response.find("ok")->as_bool()) << response.dump();
  EXPECT_FALSE(response.find("cached")->as_bool());
  ASSERT_NE(response.find("request_id"), nullptr);

  const obs::json_value* telemetry = response.find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_EQ(telemetry->find("request_id")->as_string(),
            response.find("request_id")->as_string());
  const obs::json_value* trace = telemetry->find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(telemetry->find("profile"), nullptr);  // not requested

  // Golden header shape: the exact trace_header document write_jsonl
  // emits, schema-tagged, with sampling accounting and the phase table.
  const obs::json_value* header = trace->find("header");
  ASSERT_NE(header, nullptr);
  EXPECT_EQ(header->find("event")->as_string(), "trace_header");
  EXPECT_EQ(header->find("schema")->as_string(), "ssr.trace");
  EXPECT_EQ(header->find("schema_version")->as_uint64(), 2u);
  ASSERT_NE(header->find("phases"), nullptr);
  EXPECT_GT(header->find("phases")->size(), 0u)
      << "optimal is phase-instrumented; the phase table must be present";
  EXPECT_GT(header->find("offered")->as_uint64(), 0u);

  // Events: the first trial's trajectory, framed run_start ... run_end,
  // with exactly one convergence for a successful run.
  const obs::json_value* events = trace->find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->size(), 2u);
  EXPECT_EQ(events->at(0).find("event")->as_string(), "run_start");
  EXPECT_EQ(events->at(events->size() - 1).find("event")->as_string(),
            "run_end");
  std::size_t convergences = 0;
  for (const obs::json_value& event : events->items()) {
    if (event.find("event")->as_string() == "convergence") ++convergences;
    ASSERT_NE(event.find("time"), nullptr) << event.dump();
  }
  EXPECT_EQ(convergences, 1u);
}

TEST(ServeTelemetry, ArtifactFileMatchesInBandReconstruction) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("ssr_telemetry_test_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  service_options options = fast_options();
  options.telemetry_dir = dir.string();
  {
    service svc(options);
    obs::json_value request = run_request(32, 2, 11);
    request["trace"] = true;
    const obs::json_value response = svc.handle(request);
    ASSERT_TRUE(response.find("ok")->as_bool()) << response.dump();
    const obs::json_value* telemetry = response.find("telemetry");
    ASSERT_NE(telemetry, nullptr);
    const obs::json_value* artifacts = telemetry->find("artifacts");
    ASSERT_NE(artifacts, nullptr);

    // The artifact file on disk and the in-band transport are the same
    // bytes -- a client rewriting header+events per line gets the file
    // trace_stats already parses.
    std::ifstream is(artifacts->find("trace")->as_string());
    ASSERT_TRUE(is.good());
    std::ostringstream file_text;
    file_text << is.rdbuf();
    EXPECT_EQ(file_text.str(), reconstruct_jsonl(*telemetry->find("trace")));

    // The journal artifact exists and leads with the header line.
    std::ifstream journal_is(artifacts->find("events")->as_string());
    ASSERT_TRUE(journal_is.good());
    std::string first_line;
    ASSERT_TRUE(std::getline(journal_is, first_line));
    const std::optional<obs::json_value> header =
        obs::json_value::parse(first_line);
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ(header->find("event")->as_string(), "journal_header");
    EXPECT_EQ(header->find("schema")->as_string(), "ssr.serve.events");
    EXPECT_EQ(header->find("schema_version")->as_uint64(), 1u);
  }
  std::filesystem::remove_all(dir);
}

TEST(ServeTelemetry, ProfiledRunShipsProfileDocument) {
  service svc(fast_options());
  obs::json_value request = run_request(32, 3, 7);
  request["profile"] = true;
  const obs::json_value response = svc.handle(request);
  ASSERT_TRUE(response.find("ok")->as_bool()) << response.dump();
  const obs::json_value* telemetry = response.find("telemetry");
  ASSERT_NE(telemetry, nullptr);
  EXPECT_EQ(telemetry->find("trace"), nullptr);  // not requested
  const obs::json_value* profile = telemetry->find("profile");
  ASSERT_NE(profile, nullptr);
  EXPECT_EQ(profile->find("schema")->as_string(), "ssr.profile");
  const obs::json_value* sections = profile->find("sections");
  ASSERT_NE(sections, nullptr);
  ASSERT_GT(sections->size(), 0u);
  // Every trial runs under the profiler, not just the traced one.
  bool saw_runs = false;
  for (const obs::json_value& section : sections->items()) {
    if (section.find("count")->as_uint64() >= 3) saw_runs = true;
  }
  EXPECT_TRUE(saw_runs) << profile->dump(2);
}

TEST(ServeTelemetry, TelemetryBypassesCacheLookupButStillPopulates) {
  service svc(fast_options());
  const obs::json_value plain = run_request(16, 2, 3);
  ASSERT_TRUE(svc.handle(plain).find("ok")->as_bool());

  // Same spec, traced: must execute (artifacts only exist if it runs).
  obs::json_value traced = plain;
  traced["trace"] = true;
  const obs::json_value second = svc.handle(traced);
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_FALSE(second.find("cached")->as_bool());
  EXPECT_NE(second.find("telemetry"), nullptr);
  EXPECT_EQ(svc.metrics().get_counter("serve.cache_bypass").value(), 1u);

  // An untelemetered replay still hits the (re)populated cache.
  const obs::json_value third = svc.handle(plain);
  ASSERT_TRUE(third.find("ok")->as_bool());
  EXPECT_TRUE(third.find("cached")->as_bool());
}

TEST(ServeTelemetry, JournalRecordsJobLifecycle) {
  std::ostringstream journal_text;
  service svc(fast_options());
  svc.job_journal().open_stream(&journal_text);

  obs::json_value request = run_request(32, 2, 13);
  request["trace"] = true;
  ASSERT_TRUE(svc.handle(request).find("ok")->as_bool());

  const std::vector<obs::json_value> lines =
      journal_lines(journal_text.str());
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0].find("event")->as_string(), "journal_header");

  const obs::json_value* admit = find_event(lines, "admit");
  ASSERT_NE(admit, nullptr);
  EXPECT_EQ(admit->find("request_id")->as_string(), "job-1");
  EXPECT_EQ(admit->find("protocol")->as_string(), "optimal");
  EXPECT_EQ(admit->find("n")->as_uint64(), 32u);
  EXPECT_EQ(admit->find("trials")->as_uint64(), 2u);
  EXPECT_NE(admit->find("fingerprint"), nullptr);
  EXPECT_GT(admit->find("ts_ms")->as_uint64(), 0u);

  const obs::json_value* start = find_event(lines, "start");
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->find("request_id")->as_string(), "job-1");

  const obs::json_value* complete = find_event(lines, "complete");
  ASSERT_NE(complete, nullptr);
  EXPECT_EQ(complete->find("request_id")->as_string(), "job-1");
  EXPECT_NE(complete->find("elapsed_ms"), nullptr);
  EXPECT_TRUE(complete->find("telemetry")->as_bool());
}

TEST(ServeTelemetry, JournalRecordsCacheHit) {
  std::ostringstream journal_text;
  service svc(fast_options());
  svc.job_journal().open_stream(&journal_text);

  const obs::json_value request = run_request(16, 2, 17);
  ASSERT_TRUE(svc.handle(request).find("ok")->as_bool());
  const obs::json_value replay = svc.handle(request);
  ASSERT_TRUE(replay.find("ok")->as_bool());
  ASSERT_TRUE(replay.find("cached")->as_bool());

  const std::vector<obs::json_value> lines =
      journal_lines(journal_text.str());
  const obs::json_value* hit = find_event(lines, "cache_hit");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->find("request_id")->as_string(), "job-2");
  EXPECT_NE(hit->find("fingerprint"), nullptr);
}

TEST(ServeTelemetry, JournalRecordsDeadlineExpired) {
  std::ostringstream journal_text;
  service svc(fast_options());
  svc.job_journal().open_stream(&journal_text);

  obs::json_value request = run_request(64, 200000, 9);
  request["deadline_ms"] = 1;
  const obs::json_value response = svc.handle(request);
  EXPECT_FALSE(response.find("ok")->as_bool());
  EXPECT_EQ(response.find("error")->as_string(), "deadline_exceeded");
  EXPECT_NE(response.find("request_id"), nullptr);

  const obs::json_value* expired =
      find_event(journal_lines(journal_text.str()), "deadline_expired");
  ASSERT_NE(expired, nullptr);
  EXPECT_EQ(expired->find("request_id")->as_string(), "job-1");
  EXPECT_NE(expired->find("elapsed_ms"), nullptr);
}

TEST(ServeTelemetry, TraceOptionsValidateOnTheWire) {
  service svc(fast_options());

  // Unknown option names get field-level errors with a suggestion.
  obs::json_value request = run_request(16, 1, 1);
  obs::json_value trace = obs::json_value::object();
  trace["sample_evry"] = std::uint64_t{2};
  request["trace"] = trace;
  const obs::json_value response = svc.handle(request);
  EXPECT_FALSE(response.find("ok")->as_bool());
  const obs::json_value* errors = response.find("field_errors");
  ASSERT_NE(errors, nullptr);
  ASSERT_EQ(errors->size(), 1u);
  EXPECT_EQ(errors->at(0).find("field")->as_string(), "trace.sample_evry");
  EXPECT_NE(errors->at(0).find("message")->as_string().find(
                "did you mean sample_every"),
            std::string::npos)
      << errors->at(0).dump();

  // Known option, wrong type.
  obs::json_value bad_type = run_request(16, 1, 1);
  obs::json_value trace2 = obs::json_value::object();
  trace2["max_events"] = "lots";
  bad_type["trace"] = trace2;
  const obs::json_value response2 = svc.handle(bad_type);
  EXPECT_FALSE(response2.find("ok")->as_bool());
  const obs::json_value* errors2 = response2.find("field_errors");
  ASSERT_NE(errors2, nullptr);
  EXPECT_EQ(errors2->at(0).find("field")->as_string(), "trace.max_events");
  EXPECT_EQ(errors2->at(0).find("message")->as_string(),
            "must be a non-negative integer");

  // Zero is rejected by the spec validator, not silently clamped.
  obs::json_value zero = run_request(16, 1, 1);
  obs::json_value trace3 = obs::json_value::object();
  trace3["sample_every"] = std::uint64_t{0};
  zero["trace"] = trace3;
  const obs::json_value response3 = svc.handle(zero);
  EXPECT_FALSE(response3.find("ok")->as_bool());
  EXPECT_EQ(response3.find("field_errors")->at(0).find("field")->as_string(),
            "trace.sample_every");

  // The wrong shape entirely.
  obs::json_value shape = run_request(16, 1, 1);
  shape["trace"] = 3.5;
  const obs::json_value response4 = svc.handle(shape);
  EXPECT_FALSE(response4.find("ok")->as_bool());
  EXPECT_EQ(response4.find("field_errors")->at(0).find("field")->as_string(),
            "trace");
}

TEST(ServeTelemetry, TraceSamplingOptionsReachTheSink) {
  service svc(fast_options());
  obs::json_value request = run_request(32, 1, 19);
  obs::json_value trace = obs::json_value::object();
  trace["max_events"] = std::uint64_t{4};
  request["trace"] = trace;
  const obs::json_value response = svc.handle(request);
  ASSERT_TRUE(response.find("ok")->as_bool()) << response.dump();
  const obs::json_value* shipped =
      response.find("telemetry")->find("trace");
  ASSERT_NE(shipped, nullptr);
  EXPECT_LE(shipped->find("events")->size(), 4u);
  EXPECT_GT(shipped->find("header")->find("dropped")->as_uint64(), 0u);
}

TEST(ServeTelemetry, MetricsCommandServesPrometheusText) {
  service svc(fast_options());
  ASSERT_TRUE(svc.handle(run_request(16, 1, 23)).find("ok")->as_bool());

  const obs::json_value response =
      svc.handle_line(R"({"type":"metrics","id":4})");
  ASSERT_TRUE(response.find("ok")->as_bool()) << response.dump();
  EXPECT_EQ(response.find("type")->as_string(), "metrics");
  EXPECT_EQ(response.find("content_type")->as_string(),
            "text/plain; version=0.0.4");
  const std::string text = response.find("metrics")->as_string();
  EXPECT_NE(text.find("# TYPE ssr_serve_jobs_completed counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("ssr_serve_jobs_completed 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ssr_serve_cache_size gauge"),
            std::string::npos);
  EXPECT_NE(text.find("ssr_serve_job_seconds{quantile=\"0.99\"}"),
            std::string::npos);
}

// The TSan leg re-runs this suite: many threads issuing telemetered
// requests against one service, each request owning its private trace
// sink and profiler -- nothing here may share mutable telemetry state.
TEST(ServeTelemetry, ConcurrentTelemeteredRequestsStayIsolated) {
  service_options options = fast_options();
  options.workers = 4;
  service svc(options);
  constexpr int kThreads = 6;
  std::vector<obs::json_value> responses(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&svc, &responses, i] {
      obs::json_value request =
          run_request(32, 2, static_cast<std::uint64_t>(100 + i));
      request["trace"] = true;
      request["profile"] = true;
      responses[static_cast<std::size_t>(i)] = svc.handle(request);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const obs::json_value& response : responses) {
    ASSERT_TRUE(response.find("ok")->as_bool()) << response.dump();
    const obs::json_value* telemetry = response.find("telemetry");
    ASSERT_NE(telemetry, nullptr);
    EXPECT_GT(telemetry->find("trace")->find("events")->size(), 0u);
    EXPECT_GT(telemetry->find("profile")->find("sections")->size(), 0u);
  }
}

}  // namespace
}  // namespace ssr::serve
