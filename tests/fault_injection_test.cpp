// Transient-fault experiments: corrupt a stabilized execution mid-run and
// verify recovery.  This is the self-stabilization promise in its
// operational form -- the scenario motivating the paper's reliability story
// (Section 1, "Reliable leader election").
#include <gtest/gtest.h>

#include "pp/convergence.hpp"
#include "pp/random.hpp"
#include "pp/simulation.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/sublinear.hpp"

namespace ssr {
namespace {

TEST(FaultInjection, BaselineRecoversFromRankCorruption) {
  const std::uint32_t n = 16;
  silent_n_state_ssr p(n);
  std::vector<silent_n_state_ssr::agent_state> config(n);
  for (std::uint32_t i = 0; i < n; ++i) config[i].rank = i;

  simulation<silent_n_state_ssr> sim(p, std::move(config), 21);
  rng_t faults(99);
  for (int round = 0; round < 3; ++round) {
    // Corrupt 5 agents' memories.
    for (int k = 0; k < 5; ++k) {
      const auto victim = uniform_below(faults, n);
      sim.mutable_agents()[victim].rank =
          static_cast<std::uint32_t>(uniform_below(faults, n));
    }
    const bool recovered = sim.run_until(
        [](const simulation<silent_n_state_ssr>& s) {
          return is_valid_ranking(s.protocol(), s.agents());
        },
        sim.interactions() + 10'000'000ull);
    ASSERT_TRUE(recovered) << "round " << round;
  }
}

TEST(FaultInjection, OptimalSilentRecoversFromLeaderLoss) {
  const std::uint32_t n = 16;
  optimal_silent_ssr p(n);
  rng_t rng(5);
  auto config =
      adversarial_configuration(p, optimal_silent_scenario::valid_ranking, rng);

  simulation<optimal_silent_ssr> sim(p, std::move(config), 31);
  // Kill the leader: overwrite the rank-1 agent with a duplicate of rank 2.
  for (auto& s : sim.mutable_agents()) {
    if (s.rank == 1) {
      s.rank = 2;
      break;
    }
  }
  EXPECT_FALSE(is_valid_ranking(p, sim.agents()));
  const bool recovered = sim.run_until(
      [](const simulation<optimal_silent_ssr>& s) {
        return is_valid_ranking(s.protocol(), s.agents());
      },
      50'000'000ull);
  ASSERT_TRUE(recovered);
  EXPECT_EQ(leader_count(p, sim.agents()), 1u);
}

TEST(FaultInjection, OptimalSilentRecoversFromRepeatedBursts) {
  const std::uint32_t n = 12;
  optimal_silent_ssr p(n);
  rng_t scenario_rng(6);
  auto config = adversarial_configuration(
      p, optimal_silent_scenario::valid_ranking, scenario_rng);
  simulation<optimal_silent_ssr> sim(p, std::move(config), 41);

  rng_t faults(123);
  for (int burst = 0; burst < 3; ++burst) {
    for (int k = 0; k < 4; ++k) {
      auto& victim = sim.mutable_agents()[uniform_below(faults, n)];
      victim = adversarial_configuration(
          p, optimal_silent_scenario::uniform_random, faults)[0];
    }
    const bool recovered = sim.run_until(
        [](const simulation<optimal_silent_ssr>& s) {
          return is_valid_ranking(s.protocol(), s.agents());
        },
        sim.interactions() + 50'000'000ull);
    ASSERT_TRUE(recovered) << "burst " << burst;
  }
}

TEST(FaultInjection, SublinearRecoversFromNameDuplication) {
  const std::uint32_t n = 8;
  sublinear_time_ssr p(n, 1u);
  rng_t rng(7);
  auto config =
      adversarial_configuration(p, sublinear_scenario::valid_ranking, rng);
  simulation<sublinear_time_ssr> sim(p, std::move(config), 51);
  // Duplicate agent 0's identity into agent 1 (name, roster, rank).
  sim.mutable_agents()[1] = sim.agents()[0];
  EXPECT_FALSE(is_valid_ranking(p, sim.agents()));
  const bool recovered = sim.run_until(
      [](const simulation<sublinear_time_ssr>& s) {
        return is_valid_ranking(s.protocol(), s.agents());
      },
      20'000'000ull);
  ASSERT_TRUE(recovered);
}

}  // namespace
}  // namespace ssr
