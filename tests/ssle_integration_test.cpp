// Integration: every SSR protocol in the library solves SSLE through the
// same rank-1 adapter (Section 2, "Leader election and ranking"), and the
// three protocols agree on what a correct configuration is.
#include <gtest/gtest.h>

#include "pp/convergence.hpp"
#include "pp/simulation.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/sublinear.hpp"

namespace ssr {
namespace {

template <class P>
void expect_unique_leader(const P& p,
                          const std::vector<typename P::agent_state>& config) {
  EXPECT_TRUE(is_valid_ranking(p, config));
  EXPECT_EQ(leader_count(p, config), 1u);
  // The leader is exactly the rank-1 agent.
  std::size_t leaders = 0;
  for (const auto& s : config) {
    if (is_leader(p, s)) {
      ++leaders;
      EXPECT_EQ(p.rank_of(s), 1u);
    }
  }
  EXPECT_EQ(leaders, 1u);
}

TEST(SsleIntegration, BaselineElectsUniqueLeader) {
  const std::uint32_t n = 12;
  silent_n_state_ssr p(n);
  rng_t rng(1);
  auto init = adversarial_configuration(p, rng);
  std::vector<silent_n_state_ssr::agent_state> final_config;
  convergence_options opt;
  opt.max_parallel_time = 1e6;
  const auto r = measure_convergence(p, std::move(init), 5, opt, &final_config);
  ASSERT_TRUE(r.converged);
  expect_unique_leader(p, final_config);
}

TEST(SsleIntegration, OptimalSilentElectsUniqueLeader) {
  const std::uint32_t n = 24;
  optimal_silent_ssr p(n);
  rng_t rng(2);
  auto init = adversarial_configuration(
      p, optimal_silent_scenario::uniform_random, rng);
  std::vector<optimal_silent_ssr::agent_state> final_config;
  convergence_options opt;
  opt.max_parallel_time = 1e6;
  const auto r = measure_convergence(p, std::move(init), 6, opt, &final_config);
  ASSERT_TRUE(r.converged);
  expect_unique_leader(p, final_config);
}

TEST(SsleIntegration, SublinearElectsUniqueLeader) {
  const std::uint32_t n = 8;
  sublinear_time_ssr p(n, 2u);
  rng_t rng(3);
  auto init = adversarial_configuration(
      p, sublinear_scenario::uniform_random, rng);
  std::vector<sublinear_time_ssr::agent_state> final_config;
  convergence_options opt;
  opt.max_parallel_time = 1e6;
  opt.confirm_parallel_time = 100.0;
  const auto r = measure_convergence(p, std::move(init), 7, opt, &final_config);
  ASSERT_TRUE(r.converged);
  expect_unique_leader(p, final_config);
}

// The all-leaders configuration from the paper's Omega(log n) argument:
// every protocol must demote all but one "leader".
TEST(SsleIntegration, AllLeadersConfigurationsRecover) {
  {
    silent_n_state_ssr p(16);
    std::vector<silent_n_state_ssr::agent_state> init(16);  // all rank 0
    std::vector<silent_n_state_ssr::agent_state> final_config;
    const auto r = measure_convergence(p, init, 11, {}, &final_config);
    ASSERT_TRUE(r.converged);
    expect_unique_leader(p, final_config);
  }
  {
    optimal_silent_ssr p(16);
    rng_t rng(4);
    auto init = adversarial_configuration(
        p, optimal_silent_scenario::all_settled_rank_one, rng);
    std::vector<optimal_silent_ssr::agent_state> final_config;
    convergence_options opt;
    opt.max_parallel_time = 1e6;
    const auto r =
        measure_convergence(p, std::move(init), 12, opt, &final_config);
    ASSERT_TRUE(r.converged);
    expect_unique_leader(p, final_config);
  }
}

// Once stable, the silent protocols are *stably* correct: no execution may
// leave the correct set.  Run long past convergence and re-check.
TEST(SsleIntegration, SilentProtocolsStayCorrect) {
  {
    silent_n_state_ssr p(10);
    std::vector<silent_n_state_ssr::agent_state> config(10);
    for (std::uint32_t i = 0; i < 10; ++i) config[i].rank = i;
    simulation<silent_n_state_ssr> sim(p, config, 1);
    for (int i = 0; i < 50000; ++i) sim.step();
    EXPECT_TRUE(is_valid_ranking(sim.protocol(), sim.agents()));
  }
  {
    optimal_silent_ssr p(10);
    rng_t rng(9);
    auto config = adversarial_configuration(
        p, optimal_silent_scenario::valid_ranking, rng);
    simulation<optimal_silent_ssr> sim(p, std::move(config), 1);
    for (int i = 0; i < 50000; ++i) sim.step();
    EXPECT_TRUE(is_valid_ranking(sim.protocol(), sim.agents()));
  }
}

}  // namespace
}  // namespace ssr
