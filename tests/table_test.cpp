#include "analysis/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ssr {
namespace {

TEST(TextTable, AlignsColumns) {
  text_table t({"n", "time"});
  t.add_row({"8", "1.5"});
  t.add_row({"1024", "123.4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("1024"), std::string::npos);
  EXPECT_NE(out.find("123.4"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  text_table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(TextTable, CountsRows) {
  text_table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
}

TEST(Format, MeanCi) {
  EXPECT_EQ(format_mean_ci(12.345, 0.678, 1), "12.3 ± 0.7");
}

TEST(Format, Count) {
  EXPECT_EQ(format_count(512), "512");
  EXPECT_EQ(format_count(2.5e7), "2.50e+07");
}

}  // namespace
}  // namespace ssr
