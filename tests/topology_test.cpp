// Why the paper assumes the complete interaction graph: on sparse
// topologies the protocols' error-detection arguments break, because two
// agents holding the same rank may never be scheduled together.  We exhibit
// the failures both exhaustively (terminal-SCC verification on tiny graphs)
// and constructively (explicit silent-but-wrong configurations), and check
// that the complete graph verifies under the same machinery.
#include <gtest/gtest.h>

#include "pp/graph_simulation.hpp"
#include "protocols/silent_n_state.hpp"
#include "verify/graph_reachability.hpp"

namespace ssr {
namespace {

TEST(Topology, BaselineVerifiesOnCompleteGraph) {
  const std::uint32_t n = 4;
  silent_n_state_ssr p(n);
  const auto result =
      verify_on_graph(p, interaction_graph::complete(n), p.all_states());
  EXPECT_TRUE(result.self_stabilizing);
  EXPECT_TRUE(result.silent);
  EXPECT_EQ(result.configurations, 256u);  // 4^4 position-aware configs
}

TEST(Topology, BaselineFailsOnRing) {
  // Ranks (0, 1, 0, 1) around a 4-ring: neighbors always differ, so the
  // configuration is silent -- and wrong.  The exhaustive check finds it.
  const std::uint32_t n = 4;
  silent_n_state_ssr p(n);
  const auto result =
      verify_on_graph(p, interaction_graph::ring(n), p.all_states());
  EXPECT_FALSE(result.self_stabilizing);
  ASSERT_TRUE(result.counterexample.has_value());
}

TEST(Topology, BaselineFailsOnStar) {
  // Two leaves with the same rank never interact; as long as the center
  // differs from both, nothing ever changes.
  const std::uint32_t n = 4;
  silent_n_state_ssr p(n);
  const auto result =
      verify_on_graph(p, interaction_graph::star(n), p.all_states());
  EXPECT_FALSE(result.self_stabilizing);
}

TEST(Topology, ExplicitRingLivelockIsSilent) {
  // The constructive witness behind BaselineFailsOnRing.
  const std::uint32_t n = 4;
  silent_n_state_ssr p(n);
  std::vector<silent_n_state_ssr::agent_state> config(n);
  config[0].rank = 0;
  config[1].rank = 1;
  config[2].rank = 0;
  config[3].rank = 1;
  graph_simulation<silent_n_state_ssr> sim(p, interaction_graph::ring(n),
                                           config, 1);
  EXPECT_TRUE(sim.is_silent_configuration());
  EXPECT_FALSE(is_valid_ranking(p, sim.agents()));
  for (int i = 0; i < 10000; ++i) sim.step();
  EXPECT_FALSE(is_valid_ranking(p, sim.agents()));  // stuck forever
}

TEST(Topology, SameMultisetRecoversOnCompleteGraph) {
  // The identical state multiset is NOT stuck when every pair may interact:
  // the complete graph repairs it.
  const std::uint32_t n = 4;
  silent_n_state_ssr p(n);
  std::vector<silent_n_state_ssr::agent_state> config(n);
  config[0].rank = 0;
  config[1].rank = 1;
  config[2].rank = 0;
  config[3].rank = 1;
  graph_simulation<silent_n_state_ssr> sim(p, interaction_graph::complete(n),
                                           config, 1);
  EXPECT_FALSE(sim.is_silent_configuration());
  const bool done = sim.run_until(
      [](const graph_simulation<silent_n_state_ssr>& s) {
        return is_valid_ranking(s.protocol(), s.agents());
      },
      1'000'000ull);
  EXPECT_TRUE(done);
}

TEST(Topology, DenseRandomGraphsStillDeadlockFromCollisions) {
  // Exploratory (not a paper claim), and a sharper lesson than expected:
  // even at 80% edge density, runs from the all-zero configuration (every
  // pair in collision) usually end *permanently stuck* -- the rank shuffle
  // keeps visiting configurations where some equal-rank pair is one of the
  // missing edges, and any such configuration that is otherwise
  // conflict-free is silent and wrong.  Losing even a few edges destroys
  // the protocol not just in the adversarial worst case but on typical
  // runs.  Every non-converged run below must be silent and incorrect.
  const std::uint32_t n = 12;
  silent_n_state_ssr p(n);
  int converged = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto g = interaction_graph::erdos_renyi(n, 0.8, seed);
    graph_simulation<silent_n_state_ssr> sim(
        p, g, std::vector<silent_n_state_ssr::agent_state>(n), seed);
    const bool done = sim.run_until(
        [](const graph_simulation<silent_n_state_ssr>& s) {
          return is_valid_ranking(s.protocol(), s.agents());
        },
        5'000'000ull);
    if (done) {
      ++converged;
    } else {
      EXPECT_TRUE(sim.is_silent_configuration()) << "seed " << seed;
      EXPECT_FALSE(is_valid_ranking(p, sim.agents())) << "seed " << seed;
    }
  }
  // Both outcomes occur, but deadlock dominates.
  EXPECT_LT(converged, 10);
}

}  // namespace
}  // namespace ssr
