// E8 -- ablations over the constants the paper leaves as Theta-classes
// (DESIGN.md deviation #4).  Four studies:
//
//   A. E_max (Unsettled patience, Optimal-Silent-SSR): too small and healthy
//      ranking runs time out into spurious resets; too large and a
//      leaderless configuration takes that much longer to notice.  The
//      paper needs E_max = Theta(n) with a constant clearing the recruiting
//      tail.
//   B. D_max (dormant delay = slow-leader-election window): the reset ends
//      with a unique leader only if the L,L -> L,F duel finishes inside the
//      window, which needs D_max ≳ a few n (leader elimination runs
//      ~(n-1)^2/n parallel time).  Short windows multiply resets.
//   C. prune_retention (simulation-only memory bound on history trees):
//      too short and the responder side of Check-Path-Consistency loses the
//      records that safety relies on -> false-positive resets that revoke a
//      correct ranking; longer retention buys safety with memory.  This
//      defends DESIGN.md deviation #2 empirically.
//   D. R_max factor: the paper fixes R_max = 60 ln n for proof headroom;
//      reset completion time scales linearly in the constant, which is why
//      end-to-end sublinear times carry a large additive Theta(log n) term.
#include <cmath>
#include <iostream>

#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/convergence.hpp"
#include "pp/trial.hpp"

namespace {

using namespace ssr;
using namespace ssr::bench;

// --- A/B helpers ----------------------------------------------------------

struct optimal_run {
  double time;
  double losses;  // correctness revocations (spurious resets after ranking)
};

optimal_run optimal_run_with(std::uint32_t n,
                             const optimal_silent_ssr::tuning& t,
                             optimal_silent_scenario scenario,
                             std::size_t trials, std::uint64_t seed,
                             engine_spec engine) {
  std::vector<double> times(trials), losses(trials);
  parallel_for_index(trials, [&](std::size_t i) {
    optimal_silent_ssr p(n, t);
    rng_t rng(derive_seed(seed, i));
    auto init = adversarial_configuration(p, scenario, rng);
    convergence_options opt;
    opt.max_parallel_time = 1e7;
    const auto r =
        measure_convergence_with(engine, p, std::move(init),
                                 derive_seed(seed ^ 0xff, i), opt);
    times[i] = r.converged ? r.convergence_time : opt.max_parallel_time;
    losses[i] = r.correctness_losses;
  });
  return {summarize(times).mean, summarize(losses).mean};
}

}  // namespace

int main(int argc, char** argv) {
  banner("E8: bench_ablation", "design-choice ablations (DESIGN.md §2)",
         "constants hidden in the paper's Theta() terms, made explicit");
  const bench_args args = parse_bench_args(argc, argv);
  const engine_spec engine = args.engine;
  reporter rep(args, "E8", "Design-choice ablations");

  const std::uint32_t n = 64;

  {
    std::cout << "\nA. Unsettled patience E_max (Optimal-Silent-SSR, n = "
              << n << "):\n";
    text_table t({"E_max", "clean start: time", "revocations/run",
                  "no-leader start: time"});
    for (const std::uint32_t factor : {2u, 5u, 20u, 60u}) {
      auto params = optimal_silent_ssr::tuning::defaults(n);
      params.e_max = factor * n;
      const std::size_t ab_trials = args.trials_or(30);
      const auto clean = optimal_run_with(
          n, params, optimal_silent_scenario::valid_ranking, ab_trials,
          args.seed_or(100 + factor), engine);
      const auto noleader = optimal_run_with(
          n, params, optimal_silent_scenario::no_leader, ab_trials,
          args.seed_or(200 + factor), engine);
      const std::string ab_params = "e_max=" + std::to_string(factor) + "n";
      rep.add_value("ablation_e_max", "clean_start_time", "optimal_silent", n,
                    ab_params, clean.time, "parallel_time",
                    /*higher_is_better=*/false);
      rep.add_value("ablation_e_max", "no_leader_time", "optimal_silent", n,
                    ab_params, noleader.time, "parallel_time",
                    /*higher_is_better=*/false);
      t.add_row({std::to_string(factor) + "n",
                 format_fixed(clean.time, 1),
                 format_fixed(clean.losses, 2),
                 format_fixed(noleader.time, 1)});
    }
    t.print(std::cout);
    std::cout << "  (The no-leader start isolates the patience path: the "
                 "lone Unsettled agent must count down ~E_max of its own "
                 "interactions (E_max/2 parallel time) before triggering, "
                 "so detection grows with E_max -- but below ~5n the "
                 "post-reset ranking itself times out and spurious resets "
                 "dominate.  E_max = Theta(n) with a constant clearing the "
                 "recruiting tail is exactly the paper's requirement.)\n";
  }

  {
    std::cout << "\nB. Dormant delay D_max (leader-election window, n = "
              << n << "):\n";
    text_table t(
        {"D_max", "expired start: time", "vs leader-elim (n-1)^2/n"});
    for (const std::uint32_t factor : {1u, 2u, 8u, 32u}) {
      auto params = optimal_silent_ssr::tuning::defaults(n);
      params.d_max = factor * n;
      const auto run = optimal_run_with(
          n, params, optimal_silent_scenario::all_unsettled_expired,
          args.trials_or(30), args.seed_or(300 + factor), engine);
      rep.add_value("ablation_d_max", "expired_start_time", "optimal_silent",
                    n, "d_max=" + std::to_string(factor) + "n", run.time,
                    "parallel_time", /*higher_is_better=*/false);
      t.add_row({std::to_string(factor) + "n", format_fixed(run.time, 1),
                 format_fixed(static_cast<double>(n - 1) * (n - 1) / n, 1)});
    }
    t.print(std::cout);
    std::cout << "  (Expected time grows roughly linearly in D_max -- the "
                 "dormancy itself costs D_max/2 parallel time per reset -- "
                 "while a window below the leader-elimination time only "
                 "means a constant-probability retry, which is cheap.  The "
                 "paper picks D_max = Theta(n) for the WHP guarantee; the "
                 "constant trades worst-case retries against per-reset "
                 "cost.)\n";
  }

  {
    const std::uint32_t sn = 16, sh = 3;
    std::cout << "\nC. History-tree prune retention (Sublinear-Time-SSR, "
              << "n = " << sn << ", H = " << sh << "):\n";
    text_table t({"retention", "false-positive resets / 20k steps",
                  "max nodes/agent"});
    auto base = sublinear_time_ssr::tuning::defaults(sn, sh);
    for (const std::int64_t retention :
         {std::int64_t{0}, base.t_h / std::int64_t{2}, std::int64_t{base.t_h},
          2 * std::int64_t{base.t_h}, std::int64_t{-1}}) {
      auto params = base;
      params.prune_retention = retention;
      // From a clean valid ranking, any reset is a false positive.
      std::size_t false_positives = 0;
      std::size_t max_nodes = 0;
      const std::size_t trials = 8;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        sublinear_time_ssr p(sn, params);
        rng_t rng(derive_seed(400, trial));
        auto init = adversarial_configuration(
            p, sublinear_scenario::valid_ranking, rng);
        // Scan the population every 500 interactions for 20k interactions;
        // any non-collecting role from this clean start is a false positive.
        const auto probe = [&](auto& eng) {
          bool reset_seen = false;
          while (eng.interactions() < 20000) {
            eng.run(eng.interactions() + 500, [](const agent_pair&) {},
                    [](const agent_pair&, bool) { return false; });
            for (const auto& s : eng.agents()) {
              if (s.role == sublinear_time_ssr::role_t::collecting)
                max_nodes = std::max(max_nodes, s.tree.node_count());
              else
                reset_seen = true;
            }
          }
          return reset_seen;
        };
        bool reset_seen = false;
        if (engine == engine_kind::direct) {
          direct_engine<sublinear_time_ssr> eng(p, std::move(init),
                                                derive_seed(401, trial));
          reset_seen = probe(eng);
        } else {
          batched_engine<sublinear_time_ssr> eng(p, std::move(init),
                                                 derive_seed(401, trial));
          reset_seen = probe(eng);
        }
        false_positives += reset_seen ? 1 : 0;
      }
      t.add_row({retention < 0 ? "never (paper)" : std::to_string(retention),
                 std::to_string(false_positives) + "/" + std::to_string(trials),
                 std::to_string(max_nodes)});
      rep.add_value("ablation_retention", "false_positive_fraction",
                    "sublinear", sn,
                    "retention=" + std::to_string(retention),
                    static_cast<double>(false_positives) / trials, "fraction",
                    /*higher_is_better=*/false);
    }
    t.print(std::cout);
    std::cout << "  (A sharp cliff: retention <= T_H loses the responder-"
                 "side records Check-Path-Consistency needs and every long "
                 "run false-positives; retention >= 2 T_H (the shipped "
                 "default) matches the paper's zero while bounding memory; "
                 "'never' reproduces the paper's exact semantics at the "
                 "cost of unbounded growth.)\n";
  }

  {
    std::cout << "\nD. R_max factor (Propagate-Reset countdown, sublinear "
                 "end-to-end, n = 16, H = 2):\n";
    text_table t({"R_max", "single-collision: stabilization time"});
    for (const double factor : {0.1, 0.25, 1.0}) {
      auto params = sublinear_time_ssr::tuning::defaults(16, 2);
      params.r_max = default_r_max(16, factor);
      std::vector<double> times(20);
      parallel_for_index(20, [&](std::size_t i) {
        sublinear_time_ssr p(16, params);
        rng_t rng(derive_seed(500, i));
        auto init = adversarial_configuration(
            p, sublinear_scenario::single_collision, rng);
        convergence_options opt;
        opt.max_parallel_time = 1e7;
        opt.confirm_parallel_time = 30.0;
        times[i] = measure_convergence_with(engine, p, std::move(init),
                                            derive_seed(501, i), opt)
                       .convergence_time;
      });
      t.add_row({std::to_string(params.r_max) + " (" +
                     format_fixed(factor * 60, 0) + " ln n)",
                 format_fixed(summarize(times).mean, 1)});
      rep.add_samples("ablation_r_max", "sublinear", 16,
                      "r_max=" + std::to_string(params.r_max), times.size(),
                      500, "parallel_time", times);
    }
    t.print(std::cout);
    std::cout << "  (End-to-end time tracks R_max almost linearly: the "
                 "paper's 60 ln n is proof headroom, not a performance "
                 "choice.)" << std::endl;
  }
  rep.finish();
  return 0;
}
