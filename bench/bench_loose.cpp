// E11 -- the loose-stabilization alternative (paper Sections 1 "Problem
// variants" and 6): what you get if you give up permanence.
//
// Loosely-stabilizing leader election [56] evades Theorem 2.1's n-state
// lower bound by guaranteeing only a long *holding time*: with timeout
// T = c log n it uses Theta(log n) states and converges fast, but the
// unique leader is eventually lost (a follower times out) and re-elected.
// We sweep c and measure the trade: convergence time grows mildly with T
// while the holding time explodes (exponentially in c), exactly the
// polynomial-vs-exponential-holding regimes of [56] -- and the reason the
// paper's protocols, which never lose the leader, *must* pay n states.
#include <cmath>
#include <iostream>

#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/scheduler.hpp"
#include "pp/sharded_scheduler.hpp"
#include "pp/trial.hpp"
#include "protocols/loose_stabilizing.hpp"

namespace {

using namespace ssr;
using namespace ssr::bench;

struct loose_outcome {
  double convergence = 0.0;
  double holding = 0.0;
  bool held_to_cap = false;
};

loose_outcome run_once(std::uint32_t n, std::uint32_t t_max,
                       std::uint64_t seed, double holding_cap,
                       engine_spec spec) {
  loose_stabilizing_le p(n, t_max);

  const auto drive = [&](auto& eng) {
    loose_outcome out;
    const auto leaders = [&] { return p.leader_count(eng.agents()); };
    // The leader count only moves on a state change, so unchanged
    // interactions need no rescan.
    if (leaders() != 1) {
      eng.run(
          UINT64_MAX, [](const agent_pair&) {},
          [&](const agent_pair&, bool changed) {
            return changed && leaders() == 1;
          });
    }
    const std::uint64_t conv_steps = eng.interactions();
    out.convergence = static_cast<double>(conv_steps) / n;

    const auto cap =
        static_cast<std::uint64_t>(holding_cap * static_cast<double>(n));
    eng.run(
        conv_steps + cap, [](const agent_pair&) {},
        [&](const agent_pair&, bool changed) {
          return changed && leaders() != 1;
        });
    const std::uint64_t held = eng.interactions() - conv_steps;
    out.holding = static_cast<double>(held) / n;
    out.held_to_cap = held >= cap;
    return out;
  };

  if (spec.kind == engine_kind::direct) {
    direct_engine<loose_stabilizing_le> eng(p, p.dead_configuration(), seed);
    return drive(eng);
  }
  if (spec.kind == engine_kind::sharded) {
    sharded_engine<loose_stabilizing_le> eng(p, p.dead_configuration(), seed,
                                             {.shards = spec.shards});
    return drive(eng);
  }
  batched_engine<loose_stabilizing_le> eng(p, p.dead_configuration(), seed);
  return drive(eng);
}

}  // namespace

int main(int argc, char** argv) {
  banner("E11: bench_loose",
         "loose stabilization (Sections 1 and 6; Sudo et al. [56])",
         "Theta(log n) states buy fast convergence but only a finite "
         "holding time, exponential in the timeout constant");
  const bench_args args = parse_bench_args(argc, argv);
  const engine_spec engine = args.engine;
  reporter rep(args, "E11", "Loose stabilization: states vs holding time");

  const std::uint32_t n = 64;
  const double log2n = std::log2(static_cast<double>(n));
  const double holding_cap = 200'000.0;

  text_table t({"T (timeout)", "states", "convergence mean", "holding mean",
                "runs at cap"});
  for (const double c : {1.0, 2.0, 4.0, 6.0, 8.0}) {
    const auto t_max = static_cast<std::uint32_t>(std::ceil(c * log2n));
    const std::size_t trials = args.trials_or(12);
    const std::uint64_t seed = args.seed_or(42 + t_max);
    std::vector<double> conv(trials), hold(trials);
    int capped = 0;
    for (std::size_t i = 0; i < trials; ++i) {
      const auto out = run_once(n, t_max, derive_seed(seed, i),
                                holding_cap, engine);
      conv[i] = out.convergence;
      hold[i] = out.holding;
      capped += out.held_to_cap ? 1 : 0;
    }
    t.add_row({std::to_string(t_max) + " (" + format_fixed(c, 0) +
                   " log2 n)",
               std::to_string(loose_stabilizing_le::state_count(t_max)),
               format_fixed(summarize(conv).mean, 1),
               format_fixed(summarize(hold).mean, 1),
               std::to_string(capped) + "/" + std::to_string(trials)});
    const std::string params = "t_max=" + std::to_string(t_max);
    rep.add_samples("convergence", "loose_stabilizing", n, params, trials,
                    seed, "parallel_time", conv);
    rep.add_samples("holding", "loose_stabilizing", n, params, trials, seed,
                    "parallel_time", hold)
        .lower_is_better = false;
  }
  t.print(std::cout);

  std::cout << "\nInterpretation: "
            << loose_stabilizing_le::state_count(
                   static_cast<std::uint32_t>(std::ceil(4 * log2n)))
            << " states (Theta(log n), a gap that widens with n) versus "
               "the >= " << n
            << " that Theorem 2.1 forces on true SSLE -- but the leader is "
               "only rented.\nHolding time grows exponentially in the "
               "timeout constant (rows hitting the measurement cap hold "
               ">= " << format_fixed(holding_cap, 0)
            << " time units), while the paper's protocols hold forever."
            << std::endl;
  rep.finish();
  return 0;
}
