// E10 -- engine microbenchmarks (google-benchmark): interaction throughput
// per protocol, the speedup of the accelerated baseline simulator, and the
// per-interaction cost of the batched engine (google-benchmark owns argv
// here, so the engines appear as separate BM_ functions rather than an
// --engine flag; bench_engine_scaling has the flag-driven head-to-head).
// These are implementation measurements (no paper counterpart) that size
// the experiments above.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common.hpp"
#include "pp/convergence.hpp"
#include "pp/engine.hpp"
#include "pp/simulation.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/sublinear.hpp"

namespace {

using namespace ssr;

void BM_BaselineDirectInteractions(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  silent_n_state_ssr p(n);
  rng_t rng(1);
  auto init = adversarial_configuration(p, rng);
  simulation<silent_n_state_ssr> sim(p, std::move(init), 2);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineDirectInteractions)->Arg(64)->Arg(1024);

void BM_BaselineAcceleratedStabilization(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    std::vector<std::uint32_t> ranks(n, 0);
    accelerated_silent_n_state sim(n, ranks, ++seed);
    benchmark::DoNotOptimize(sim.run_to_stabilization());
  }
}
BENCHMARK(BM_BaselineAcceleratedStabilization)->Arg(256)->Arg(1024);

void BM_OptimalSilentInteractions(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  optimal_silent_ssr p(n);
  simulation<optimal_silent_ssr> sim(p, p.initial_configuration(), 3);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimalSilentInteractions)->Arg(64)->Arg(1024);

void BM_SublinearInteractions(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto h = static_cast<std::uint32_t>(state.range(1));
  sublinear_time_ssr p(n, h);
  rng_t rng(4);
  simulation<sublinear_time_ssr> sim(p, p.initial_configuration(rng), 5);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SublinearInteractions)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({64, 2});

void BM_BaselineBatchedInteractions(benchmark::State& state) {
  // Count engine on Silent-n-state-SSR: items processed counts *simulated*
  // interactions, including whole geometrically-skipped runs of certain
  // nulls -- the throughput metric the batched engine exists to move.  The
  // run stabilizes (and the engine goes quiescent) well inside the timing
  // loop at these n, so it is restarted from a fresh adversarial
  // configuration whenever that happens.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  silent_n_state_ssr p(n);
  std::uint64_t seed = 1, total = 0;
  const auto make = [&] {
    rng_t rng(++seed);
    auto init = adversarial_configuration(p, rng);
    batched_engine<silent_n_state_ssr> eng(p, std::move(init), ++seed);
    eng.attach_profiler(obs::profiler_default());
    return eng;
  };
  auto eng = make();
  for (auto _ : state) {
    if (eng.quiescent()) {
      total += eng.interactions();
      eng = make();
    }
    eng.run(eng.interactions() + 1024, [](const agent_pair&) {},
            [](const agent_pair&, bool) { return false; });
  }
  total += eng.interactions();
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_BaselineBatchedInteractions)->Arg(64)->Arg(1024);

void BM_OptimalSilentBatchedInteractions(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  optimal_silent_ssr p(n);
  std::uint64_t seed = 3, total = 0;
  const auto make = [&] {
    rng_t rng(++seed);
    auto init = adversarial_configuration(
        p, optimal_silent_scenario::uniform_random, rng);
    batched_engine<optimal_silent_ssr> eng(p, std::move(init), ++seed);
    eng.attach_profiler(obs::profiler_default());
    return eng;
  };
  auto eng = make();
  for (auto _ : state) {
    if (eng.quiescent()) {
      total += eng.interactions();
      eng = make();
    }
    eng.run(eng.interactions() + 1024, [](const agent_pair&) {},
            [](const agent_pair&, bool) { return false; });
  }
  total += eng.interactions();
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
}
BENCHMARK(BM_OptimalSilentBatchedInteractions)->Arg(64)->Arg(1024);

void BM_SublinearBatchedInteractions(benchmark::State& state) {
  // Sublinear-Time-SSR is not batch-countable; this exercises the
  // collision-aware block path of the batched engine.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto h = static_cast<std::uint32_t>(state.range(1));
  sublinear_time_ssr p(n, h);
  rng_t rng(4);
  batched_engine<sublinear_time_ssr> eng(p, p.initial_configuration(rng), 5);
  eng.attach_profiler(obs::profiler_default());
  std::uint64_t budget = 0;
  for (auto _ : state) {
    budget += 1024;
    eng.run(budget, [](const agent_pair&) {},
            [](const agent_pair&, bool) { return false; });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(eng.interactions()));
}
BENCHMARK(BM_SublinearBatchedInteractions)->Args({16, 2})->Args({64, 2});

void BM_RankTrackerUpdate(benchmark::State& state) {
  // The O(1) correctness tracker is on the hot path of every measurement;
  // keep it cheap.
  rank_tracker tracker(1024);
  for (std::uint32_t i = 0; i < 1024; ++i) tracker.add(i + 1);
  std::uint32_t r = 1;
  for (auto _ : state) {
    tracker.update(r, r + 1);
    tracker.update(r + 1, r);
    benchmark::DoNotOptimize(tracker.correct());
    r = r % 1000 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankTrackerUpdate);

/// Console output as usual, plus every per-iteration run recorded as a
/// value row in BENCH_E10.json (items/sec where the benchmark reports
/// throughput, seconds per iteration otherwise).
class recording_reporter : public benchmark::ConsoleReporter {
 public:
  explicit recording_reporter(ssr::bench::reporter& rep) : rep_(&rep) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        rep_->add_value("throughput", "items_per_second",
                        run.benchmark_name(), 0, "", items->second.value,
                        "items/s", /*higher_is_better=*/true);
      } else if (run.iterations > 0) {
        rep_->add_value("throughput", "seconds_per_iteration",
                        run.benchmark_name(), 0, "",
                        run.real_accumulated_time /
                            static_cast<double>(run.iterations),
                        "s", /*higher_is_better=*/false);
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  ssr::bench::reporter* rep_;
};

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark owns --benchmark_* flags; everything else goes through
  // the shared bench parser so --out-dir/--no-json (and flag typo
  // suggestions) work here like in every other bench.
  std::vector<char*> gbench_argv{argv[0]};
  std::vector<char*> ours_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    (arg.rfind("--benchmark_", 0) == 0 ? gbench_argv : ours_argv)
        .push_back(argv[i]);
  }
  const ssr::bench::bench_args args = ssr::bench::parse_bench_args(
      static_cast<int>(ours_argv.size()), ours_argv.data());
  ssr::bench::reporter rep(args, "E10",
                           "Engine microbenchmarks (google-benchmark)");

  int gbench_argc = static_cast<int>(gbench_argv.size());
  benchmark::Initialize(&gbench_argc, gbench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc,
                                             gbench_argv.data()))
    return 1;
  recording_reporter reporter(rep);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  rep.finish();
  return 0;
}
