// E10 -- engine microbenchmarks (google-benchmark): interaction throughput
// per protocol and the speedup of the accelerated baseline simulator.  These
// are implementation measurements (no paper counterpart) that size the
// experiments above.
#include <benchmark/benchmark.h>

#include "pp/convergence.hpp"
#include "pp/simulation.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"
#include "protocols/sublinear.hpp"

namespace {

using namespace ssr;

void BM_BaselineDirectInteractions(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  silent_n_state_ssr p(n);
  rng_t rng(1);
  auto init = adversarial_configuration(p, rng);
  simulation<silent_n_state_ssr> sim(p, std::move(init), 2);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BaselineDirectInteractions)->Arg(64)->Arg(1024);

void BM_BaselineAcceleratedStabilization(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    std::vector<std::uint32_t> ranks(n, 0);
    accelerated_silent_n_state sim(n, ranks, ++seed);
    benchmark::DoNotOptimize(sim.run_to_stabilization());
  }
}
BENCHMARK(BM_BaselineAcceleratedStabilization)->Arg(256)->Arg(1024);

void BM_OptimalSilentInteractions(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  optimal_silent_ssr p(n);
  simulation<optimal_silent_ssr> sim(p, p.initial_configuration(), 3);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimalSilentInteractions)->Arg(64)->Arg(1024);

void BM_SublinearInteractions(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto h = static_cast<std::uint32_t>(state.range(1));
  sublinear_time_ssr p(n, h);
  rng_t rng(4);
  simulation<sublinear_time_ssr> sim(p, p.initial_configuration(rng), 5);
  for (auto _ : state) sim.step();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SublinearInteractions)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->Args({64, 2});

void BM_RankTrackerUpdate(benchmark::State& state) {
  // The O(1) correctness tracker is on the hot path of every measurement;
  // keep it cheap.
  rank_tracker tracker(1024);
  for (std::uint32_t i = 0; i < 1024; ++i) tracker.add(i + 1);
  std::uint32_t r = 1;
  for (auto _ : state) {
    tracker.update(r, r + 1);
    tracker.update(r + 1, r);
    benchmark::DoNotOptimize(tracker.correct());
    r = r % 1000 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RankTrackerUpdate);

}  // namespace

BENCHMARK_MAIN();
