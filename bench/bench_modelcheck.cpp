// E16 -- exact expected stabilization times vs empirical simulation.
//
// The model checker (verify/model_check) computes the *exact* expected
// number of interactions to stable correctness by a linear solve on the
// configuration-space Markov chain; this bench cross-checks that analytic
// number end to end against honest simulation of the protocol itself:
// draw every agent's initial state independently and uniformly from the
// declared state inventory (the distribution the exact number weights
// configurations by), run the uniform-pair scheduler on the real
// transition function, and count interactions until the run enters the
// stably correct set.  Agreement gates both directions through
// report_compare's value tolerance plus a tight standard-error band --
// a drift in either the enumerated chain or the solver fails the bench.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/protocol_lint/lint.hpp"
#include "analysis/protocol_lint/model_check.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "obs/report_compare.hpp"
#include "pp/random.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"

namespace {

using namespace ssr;

/// Runs one trial: per-agent uniform initial states over `all_states`,
/// uniform ordered-pair scheduling through the protocol's own interact(),
/// stopping when the configuration enters the stably correct set (exact
/// expected time 0).  Returns the interaction count.
template <class P>
double empirical_trial(const P& protocol,
                       const std::vector<typename P::agent_state>& all_states,
                       const std::map<std::vector<std::uint32_t>,
                                      std::size_t>& config_index,
                       const std::vector<double>& exact_time, rng_t& rng) {
  const std::uint32_t n = protocol.population_size();
  const std::size_t k = all_states.size();
  std::vector<std::size_t> agent_state(n);
  std::vector<std::uint32_t> counts(k, 0);
  for (std::uint32_t a = 0; a < n; ++a) {
    agent_state[a] = static_cast<std::size_t>(uniform_below(rng, k));
    ++counts[agent_state[a]];
  }
  auto find_state = [&](const typename P::agent_state& s) -> std::size_t {
    for (std::size_t i = 0; i < k; ++i) {
      if (all_states[i] == s) return i;
    }
    throw std::logic_error("empirical trial left the state inventory");
  };
  std::uint64_t interactions = 0;
  // 10^6 interactions is orders of magnitude past the exact worst case at
  // these sizes; hitting it means the chain and the simulation disagree.
  while (interactions < 1'000'000) {
    if (exact_time[config_index.at(counts)] == 0.0) {
      return static_cast<double>(interactions);
    }
    const std::uint32_t i = static_cast<std::uint32_t>(uniform_below(rng, n));
    std::uint32_t j = static_cast<std::uint32_t>(uniform_below(rng, n - 1));
    if (j >= i) ++j;
    typename P::agent_state x = all_states[agent_state[i]];
    typename P::agent_state y = all_states[agent_state[j]];
    protocol.interact(x, y, rng);
    const std::size_t xi = find_state(x);
    const std::size_t yi = find_state(y);
    --counts[agent_state[i]];
    --counts[agent_state[j]];
    ++counts[xi];
    ++counts[yi];
    agent_state[i] = xi;
    agent_state[j] = yi;
    ++interactions;
  }
  throw std::logic_error("empirical trial failed to stabilize");
}

struct gate_result {
  summary stats;
  bool passed = true;
  std::string detail;
};

/// Simulates `trials` runs of the registry entry's protocol and gates the
/// empirical mean against the exact uniform-weighted expectation.
template <class P>
gate_result run_gate(const P& protocol, const lint::model_run& model,
                     std::size_t trials, std::uint64_t seed,
                     bench::reporter& rep) {
  const std::vector<typename P::agent_state> all_states =
      protocol.all_states();
  std::map<std::vector<std::uint32_t>, std::size_t> config_index;
  for (std::size_t i = 0; i < model.graph.configs.size(); ++i) {
    config_index.emplace(model.graph.configs[i], i);
  }
  std::vector<double> samples;
  samples.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    rng_t rng(derive_seed(seed, t));
    samples.push_back(empirical_trial(protocol, all_states, config_index,
                                      model.result.expected_interactions,
                                      rng));
  }

  const double exact = model.result.uniform_expected_interactions;
  gate_result gate;
  gate.stats = summarize(samples);

  obs::report_row& exact_row = rep.add_value(
      "exact", "exact_expected_interactions", model.protocol, model.n, "",
      exact, "interactions", /*higher_is_better=*/false);
  rep.add_samples("empirical", model.protocol, model.n, "", trials, seed,
                  "interactions", samples);
  // Sections differ so the exact / empirical-mean / sample rows keep
  // distinct join keys (report_diff matches on section, protocol, n,
  // params) and a future run compares each against its own kind.
  obs::report_row& mean_row = rep.add_value(
      "empirical-mean", "empirical_expected_interactions", model.protocol,
      model.n, "", gate.stats.mean, "interactions",
      /*higher_is_better=*/false);

  // Both directions: worsening() is one-sided, so an empirical mean far
  // *below* the exact value must fail the reversed comparison.
  const obs::row_verdict forward = obs::compare_rows(exact_row, mean_row);
  const obs::row_verdict backward = obs::compare_rows(mean_row, exact_row);
  // Statistical teeth: the value tolerance (1/3) is generous, so also
  // require the exact value inside a 5-standard-error band of the mean.
  const double band = 5.0 * gate.stats.stderr_mean + 1e-9;
  if (forward.regression || backward.regression) {
    gate.passed = false;
    gate.detail = forward.regression ? forward.detail : backward.detail;
  } else if (std::abs(gate.stats.mean - exact) > band) {
    gate.passed = false;
    gate.detail = "empirical mean " + format_fixed(gate.stats.mean, 4) +
                  " outside 5-SEM band " + format_fixed(band, 4) +
                  " of exact " + format_fixed(exact, 4);
  }
  return gate;
}

// The verification tuning of tests/verify_test.cpp and the lint registry's
// "optimal" entry: E_max=n, R_max=2, D_max=2.
optimal_silent_ssr::tuning tiny_optimal_tuning(std::uint32_t n) {
  optimal_silent_ssr::tuning t;
  t.e_max = n;
  t.r_max = 2;
  t.d_max = 2;
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ssr::bench;

  banner("E16: bench_modelcheck", "Exact configuration-space analysis",
         "analytic expected stabilization times (absorption linear solve) "
         "vs honest protocol simulation, uniform-per-agent initials");
  const bench_args args = parse_bench_args(argc, argv);
  reporter rep(args, "E16", "Exact vs empirical expected stabilization time");

  bool all_passed = true;
  ssr::text_table t({"protocol", "n", "configs", "exact E[T]",
                     "empirical mean ± ci", "trials", "verdict"});

  struct point {
    const char* name;
    std::uint32_t n;
    std::size_t trials;
  };
  // Baseline scales mildly (worst 49.6 interactions at n=5); optimal-tiny
  // configuration spaces grow fast, so its empirical points stay at n<=3.
  const point points[] = {
      {"baseline", 2, 4000}, {"baseline", 3, 4000}, {"baseline", 4, 2000},
      {"baseline", 5, 2000}, {"optimal", 2, 2000},  {"optimal", 3, 1000},
  };
  for (const point& pt : points) {
    const std::size_t trials = args.trials_or(pt.trials);
    const std::uint64_t seed = args.seed_or(0xe16ULL + pt.n);
    const ssr::lint::protocol_entry& entry =
        ssr::lint::resolve_protocol_entry(pt.name);
    const std::optional<ssr::lint::model_run> model =
        ssr::lint::run_entry_model(entry, pt.n);
    if (!model.has_value() || !model->result.expected_time_computed) {
      std::cerr << "model check unavailable for " << pt.name
                << " n=" << pt.n << '\n';
      return 1;
    }
    gate_result gate;
    if (std::string(pt.name) == "baseline") {
      gate = run_gate(ssr::silent_n_state_ssr(pt.n), *model, trials, seed,
                      rep);
    } else {
      gate = run_gate(
          ssr::optimal_silent_ssr(pt.n, tiny_optimal_tuning(pt.n)), *model,
          trials, seed, rep);
    }
    if (!gate.passed) {
      all_passed = false;
      std::cerr << "GATE FAIL " << pt.name << " n=" << pt.n << ": "
                << gate.detail << '\n';
    }
    t.add_row({pt.name, std::to_string(pt.n),
               std::to_string(model->result.configurations),
               format_fixed(model->result.uniform_expected_interactions, 4),
               format_mean_ci(gate.stats.mean, ci95_halfwidth(gate.stats), 4),
               std::to_string(trials), gate.passed ? "ok" : "FAIL"});
  }
  t.print(std::cout);
  std::cout << (all_passed
                    ? "  exact absorption solve and simulation agree on "
                      "every point\n"
                    : "  DRIFT between exact solve and simulation\n");
  rep.finish();
  return all_passed ? 0 : 1;
}
