// E2 -- Table 1, row 4: the H time/space tradeoff of Sublinear-Time-SSR.
//
// Paper claim (Theorem 5.1): expected stabilization Theta(H * n^{1/(H+1)})
// for constant H (H = 0 is the silent Theta(n) direct-detection variant,
// H = 1 the O(sqrt n) dictionary scheme), reaching Theta(log n) at
// H = Theta(log n), while states grow as exp(O(n^H) log n).
//
// The quantity that carries the H-dependence is the *collision-detection
// latency*: we start from the single_collision configuration (exactly two
// agents share a name; no other error signal exists) and measure the time
// until some agent triggers a reset.  Detection is the stabilization
// bottleneck -- everything after it (Propagate-Reset, roster refill) is
// Theta(log n) with a large constant (R_max = 60 ln n) that would otherwise
// drown the tradeoff at simulable n.  End-to-end stabilization from the
// same start is reported alongside.
#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "protocols/state_space.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  using namespace ssr::bench;

  banner("E2: bench_tradeoff_h", "Table 1, row 4 (+ Theorem 5.1)",
         "detection Theta(H n^{1/(H+1)}) for constant H, Theta(log n) at "
         "H=Theta(log n); states exp(O(n^H) log n)");
  const bench_args args = parse_bench_args(argc, argv);
  const engine_spec engine = args.engine;
  reporter rep(args, "E2", "Table 1, row 4: H time/space tradeoff");

  struct point {
    std::uint32_t n, h;
    std::size_t trials;
    bool parallel;
  };
  // Larger (n, H) points keep full history trees of ~n^H nodes per agent
  // (the protocol's quasi-exponential state space is real memory here), so
  // the sweep is bounded accordingly and big points run sequentially.
  const point sweep[] = {
      {16, 0, 60, true},  {16, 1, 60, true},  {16, 2, 40, true},
      {16, 3, 20, true},  {16, 4, 10, false},
      {32, 0, 60, true},  {32, 1, 60, true},  {32, 2, 40, true},
      {32, 3, 20, true},  {32, 4, 4, false},
      {64, 0, 40, true},  {64, 1, 40, true},  {64, 2, 20, true},
      {128, 0, 30, true}, {128, 1, 30, true}, {128, 2, 10, true},
  };

  std::uint32_t current_n = 0;
  text_table* table = nullptr;
  std::vector<text_table> tables;
  tables.reserve(8);

  for (const point& pt : sweep) {
    if (pt.n != current_n) {
      current_n = pt.n;
      tables.emplace_back(std::vector<std::string>{
          "H", "trials", "detection mean ± ci", "p90", "H*n^(1/(H+1))",
          "det/pred", "end-to-end mean", "log2(states) est"});
      table = &tables.back();
    }
    const std::size_t detect_trials = args.trials_or(pt.trials);
    const std::uint64_t detect_seed = args.seed_or(900 + 31 * pt.n + pt.h);
    const auto detect = detection_latencies(pt.n, pt.h, detect_trials,
                                            detect_seed, pt.parallel, engine);
    const std::size_t total_trials =
        args.trials_or(std::max<std::size_t>(pt.trials / 2, 3));
    const std::uint64_t total_seed = args.seed_or(500 + 17 * pt.n + pt.h);
    const auto total = sublinear_times(pt.n, pt.h, total_trials, total_seed,
                                       sublinear_scenario::single_collision,
                                       /*confirm=*/30.0, pt.parallel, engine);
    const std::string params = "h=" + std::to_string(pt.h);
    rep.add_samples("detection", "sublinear", pt.n, params, detect_trials,
                    detect_seed, "parallel_time", detect);
    rep.add_samples("end_to_end", "sublinear", pt.n, params, total_trials,
                    total_seed, "parallel_time", total);
    const summary ds = summarize(detect);
    const summary ts = summarize(total);
    const double pred =
        pt.h == 0 ? static_cast<double>(pt.n)
                  : pt.h * std::pow(static_cast<double>(pt.n),
                                    1.0 / static_cast<double>(pt.h + 1));
    const double bits = sublinear_state_bits(
        pt.n, sublinear_time_ssr::tuning::defaults(pt.n, pt.h));
    table->add_row({std::to_string(pt.h), std::to_string(pt.trials),
                    format_mean_ci(ds.mean, ci95_halfwidth(ds), 2),
                    format_fixed(ds.p90, 2), format_fixed(pred, 1),
                    format_fixed(ds.mean / pred, 2),
                    format_fixed(ts.mean, 1), format_count(bits)});
  }

  const std::uint32_t ns[] = {16, 32, 64, 128};
  for (std::size_t i = 0; i < tables.size(); ++i) {
    std::cout << "\nn = " << ns[i] << ":\n";
    tables[i].print(std::cout);
  }

  std::cout << "\nInterpretation: detection latency falls steeply with H"
               "\n(H=0 ~ n/2 direct meeting; H=1 ~ sqrt(n); larger H ~ log n)"
               "\nwhile the state estimate explodes -- the Table 1 tradeoff."
               "\nEnd-to-end time adds the Theta(log n) reset/rerank phases"
               "\n(paper constant R_max = 60 ln n)." << std::endl;
  rep.finish();
  return 0;
}
