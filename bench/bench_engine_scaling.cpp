// E15 -- head-to-head engine scaling: simulated interactions per second of
// the direct and batched engines at n = 10^3 .. 10^6, plus a shard-count
// sweep of the sharded multi-threaded engine at n = 10^6 .. 10^8.
//
// The quantity that matters for experiment sizing is *simulated*
// interactions per wall-clock second: the batched engine advances the same
// stochastic process (distribution-equivalence is tested in
// tests/engine_equivalence_test.cpp) but skips whole geometric runs of
// certainly-null interactions for batch-countable protocols, so its
// simulated rate grows with the null fraction -- dramatic near silence,
// where almost every sampled pair is settled/settled with distinct ranks.
// Each cell below is time-boxed: the engine runs from an adversarial start
// in growing chunks until the time budget is spent (restarting from a fresh
// adversarial configuration if it reaches quiescence), and reports
// simulated-interactions / elapsed-seconds.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/engine.hpp"
#include "pp/sharded_scheduler.hpp"
#include "protocols/adversary.hpp"
#include "protocols/optimal_silent.hpp"
#include "protocols/silent_n_state.hpp"

namespace {

using namespace ssr;
using namespace ssr::bench;

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Runs engines produced by `make` for ~`budget_seconds` of wall-clock time
/// and returns simulated interactions per second.  Chunks double while they
/// finish quickly so that clock reads never dominate, which matters once
/// the count engine skips millions of nulls per executed interaction.
template <class MakeEngine>
double interactions_per_second(MakeEngine make, double budget_seconds) {
  auto eng = make();
  std::uint64_t total = 0;
  std::uint64_t chunk = std::uint64_t{1} << 14;
  const auto start = clock_type::now();
  double elapsed = 0.0;
  while (elapsed < budget_seconds) {
    const std::uint64_t before = eng.interactions();
    // Engines that expose a threaded mode (the sharded engine) are measured
    // through it -- that is the mode whose throughput this bench exists to
    // record; hooked run() is its sequential twin.
    if constexpr (requires { eng.run_parallel(std::uint64_t{}); }) {
      eng.run_parallel(before + chunk);
    } else {
      eng.run(before + chunk, [](const agent_pair&) {},
              [](const agent_pair&, bool) { return false; });
    }
    const double chunk_seconds = seconds_since(start) - elapsed;
    elapsed += chunk_seconds;
    if (eng.quiescent()) {
      // A quiescent count engine consumes the rest of the chunk budget as
      // one free jump (every remaining interaction is null); counting that
      // tail would measure skipping of a dead configuration, not
      // simulation.  Discard the chunk and restart from a fresh start.
      total += before;
      eng = make();
      continue;
    }
    if (chunk_seconds < 5e-3 && chunk < (std::uint64_t{1} << 40)) chunk *= 2;
  }
  total += eng.interactions();
  return static_cast<double>(total) / elapsed;
}

template <class P, class MakeConfig>
void scaling_table(reporter& rep, const char* protocol, const char* scenario,
                   const char* title, MakeConfig make_config,
                   double budget_seconds) {
  std::cout << "\n" << title << " (time box " << format_fixed(budget_seconds, 1)
            << " s per cell):\n";
  text_table t({"n", "direct inter/s", "batched inter/s", "speedup"});
  for (const std::uint32_t n : {1'000u, 10'000u, 100'000u, 1'000'000u}) {
    std::uint64_t seed = 9000 + n;
    const auto direct_rate = interactions_per_second(
        [&] {
          P p(n);
          rng_t rng(++seed);
          auto init = make_config(p, rng);
          return direct_engine<P>(p, std::move(init), ++seed);
        },
        budget_seconds);
    const auto batched_rate = interactions_per_second(
        [&] {
          P p(n);
          rng_t rng(++seed);
          auto init = make_config(p, rng);
          return batched_engine<P>(p, std::move(init), ++seed);
        },
        budget_seconds);
    t.add_row({std::to_string(n), format_count(direct_rate),
               format_count(batched_rate),
               format_fixed(batched_rate / direct_rate, 1) + "x"});
    const std::string params = std::string("scenario=") + scenario;
    rep.add_value("engine_rate", "direct_interactions_per_second", protocol,
                  n, params, direct_rate, "interactions/s");
    rep.add_value("engine_rate", "batched_interactions_per_second", protocol,
                  n, params, batched_rate, "interactions/s");
  }
  t.print(std::cout);
}

/// Shard-count sweep of the sharded engine, with the batched engine's rate
/// on the same configurations as the single-core yardstick.  Every sharded
/// interaction is executed (no null elision), so its column is raw executed
/// throughput; interactions_per_second_per_core divides by the worker
/// threads actually used, the number report_trend tracks across revisions.
template <class P, class MakeConfig>
void sharded_scaling_table(reporter& rep, const char* protocol,
                           const char* scenario, const char* title,
                           MakeConfig make_config, double budget_seconds,
                           std::uint64_t max_n) {
  std::cout << "\n" << title << ", sharded engine sweep (time box "
            << format_fixed(budget_seconds, 1) << " s per cell):\n";
  text_table t({"n", "shards", "threads", "sharded inter/s", "per core",
                "vs batched"});
  std::vector<std::uint32_t> sizes = {1'000'000u, 10'000'000u};
  if (max_n >= 100'000'000ull) sizes.push_back(100'000'000u);
  for (const std::uint32_t n : sizes) {
    std::uint64_t seed = 9500 + n;
    const auto batched_rate = interactions_per_second(
        [&] {
          P p(n);
          rng_t rng(++seed);
          auto init = make_config(p, rng);
          return batched_engine<P>(p, std::move(init), ++seed);
        },
        budget_seconds);
    const std::string params = std::string("scenario=") + scenario;
    rep.add_value("engine_rate", "batched_interactions_per_second", protocol,
                  n, params, batched_rate, "interactions/s");
    for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      const auto make = [&] {
        P p(n);
        rng_t rng(++seed);
        auto init = make_config(p, rng);
        return sharded_engine<P>(p, std::move(init), ++seed,
                                 {.shards = shards});
      };
      std::uint32_t threads = 1;
      {
        auto probe = make();
        threads = probe.thread_count();
      }
      const auto rate = interactions_per_second(make, budget_seconds);
      const double per_core = rate / static_cast<double>(threads);
      t.add_row({std::to_string(n), std::to_string(shards),
                 std::to_string(threads), format_count(rate),
                 format_count(per_core),
                 format_fixed(rate / batched_rate, 1) + "x"});
      const std::string shard_params =
          params + " shards=" + std::to_string(shards);
      rep.add_value("engine_rate", "sharded_interactions_per_second", protocol,
                    n, shard_params, rate, "interactions/s");
      rep.add_value("engine_rate", "interactions_per_second_per_core",
                    protocol, n, shard_params, per_core, "interactions/s");
    }
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  banner("E15: bench_engine_scaling",
         "implementation measurement (no paper counterpart)",
         "the batched engine's geometric null-skipping buys orders of "
         "magnitude in simulated interactions/sec as n grows");
  const bench_args args = parse_bench_args(argc, argv);
  reporter rep(args, "E15", "Engine scaling: simulated interactions/sec");
  std::cout << "(this bench always measures every engine; --engine selects "
               "nothing here.\n --max-n=100000000 extends the sharded sweep "
               "to n = 1e8)\n";

  scaling_table<silent_n_state_ssr>(
      rep, "silent_n_state", "uniform_random",
      "Silent-n-state-SSR, uniform random ranks",
      [](const silent_n_state_ssr& p, rng_t& rng) {
        return adversarial_configuration(p, rng);
      },
      0.3);

  scaling_table<optimal_silent_ssr>(
      rep, "optimal_silent", "uniform_random",
      "Optimal-Silent-SSR, uniform random start",
      [](const optimal_silent_ssr& p, rng_t& rng) {
        return adversarial_configuration(
            p, optimal_silent_scenario::uniform_random, rng);
      },
      0.3);

  // The sharded sweep's honest yardstick is Optimal-Silent's uniform-random
  // start: nothing is certainly null there, so the batched column is real
  // work, not geometric skipping, and "vs batched" is a genuine core-count
  // speedup.  (On the baseline the count engine's simulated rate includes
  // skipped nulls and dwarfs any executed-interaction engine by design.)
  sharded_scaling_table<optimal_silent_ssr>(
      rep, "optimal_silent", "uniform_random",
      "Optimal-Silent-SSR, uniform random start",
      [](const optimal_silent_ssr& p, rng_t& rng) {
        return adversarial_configuration(
            p, optimal_silent_scenario::uniform_random, rng);
      },
      0.3, args.max_n);

  std::cout << "\nInterpretation: the direct engine's rate is flat in n "
               "(every interaction costs one\nRNG draw + one transition), "
               "while the batched rate scales with n(n-1)/W -- the\n"
               "expected run of certainly-null pairs per maybe-active one.  "
               "The baseline's random\nstart has W ~ n, so whole Theta(n) "
               "null runs collapse into one geometric draw and\nan "
               "O(log n) count update; this is what makes the n >= 10^6 "
               "regime reachable at\nall.  Optimal-Silent's uniform-random "
               "start is the honest contrast: most agents\nstart Unsettled "
               "(volatile), nothing is certainly null, and the count "
               "engine's\nindexing overhead buys nothing until the "
               "population is largely settled.  The sharded sweep adds the\n"
               "other axis: once nothing can be skipped, cores are the only "
               "lever, and the\nper-core column is the portable number to "
               "track across revisions."
            << std::endl;
  rep.finish();
  return 0;
}
