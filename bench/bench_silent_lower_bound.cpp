// E4 -- Observation 2.2: any silent SSLE protocol needs Omega(n) expected
// convergence time, and >= alpha*n*ln(n) time with probability >=
// 0.5 * n^(-3 alpha).
//
// The proof's construction is executable: take the silent single-leader
// configuration of a silent protocol, clone the leader state onto a second
// agent, and wait -- only a direct meeting of the two leaders can fix the
// configuration, which takes n(n-1)/2 interactions in expectation, i.e.
// ~(n-1)/2 parallel time.  We run the construction on both silent protocols
// and compare the measured mean with the (n-1)/2 prediction and the tail
// mass with the analytic lower bound.
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/convergence.hpp"
#include "pp/trial.hpp"
#include "processes/analytic.hpp"
#include "protocols/silent_n_state.hpp"

namespace {

using namespace ssr;
using namespace ssr::bench;

// Baseline: ranks 0..n-1 with agent 1 cloned onto rank 0 (and rank 1
// vacated) is exactly the planted-duplicate-leader configuration.
std::vector<double> planted_duplicate_times(std::uint32_t n,
                                            std::size_t trials,
                                            std::uint64_t seed,
                                            engine_spec engine) {
  return run_trials(
      trials, seed,
      [n, engine](std::uint64_t s, engine_kind) {
        silent_n_state_ssr p(n);
        std::vector<silent_n_state_ssr::agent_state> config(n);
        for (std::uint32_t i = 0; i < n; ++i) config[i].rank = i;
        config[1].rank = 0;  // duplicate leader; rank 1 now vacant
        const auto r = measure_convergence_with(engine, p, std::move(config),
                                                s, {.max_parallel_time = 1e9});
        return r.convergence_time;
      },
      {.parallel = true, .engine = engine});
}

}  // namespace

int main(int argc, char** argv) {
  banner("E4: bench_silent_lower_bound", "Observation 2.2",
         "silent SSLE: expected >= ~n/3 time; P[time >= alpha n ln n] >= "
         "0.5 n^(-3 alpha)");
  const bench_args args = parse_bench_args(argc, argv);
  const engine_spec engine = args.engine;
  reporter rep(args, "E4", "Observation 2.2: silent SSLE lower bound");

  {
    std::cout << "\nPlanted duplicate leader in the baseline's silent "
                 "configuration:\n";
    text_table t({"n", "trials", "mean time ± ci", "(n-1)/2 pred", "t/pred"});
    for (const std::uint32_t n : {16u, 32u, 64u, 128u, 256u}) {
      const std::size_t trials = args.trials_or(200);
      const std::uint64_t seed = args.seed_or(11 + n);
      const auto times = planted_duplicate_times(n, trials, seed, engine);
      rep.add_samples("planted_duplicate", "silent_n_state", n, "", trials,
                      seed, "parallel_time", times);
      const summary s = summarize(times);
      const double pred = direct_meeting_time(n);
      t.add_row({std::to_string(n), std::to_string(trials),
                 format_mean_ci(s.mean, ci95_halfwidth(s), 2),
                 format_fixed(pred, 1), format_fixed(s.mean / pred, 3)});
    }
    t.print(std::cout);
    std::cout << "  (Linear growth with t/pred ~= 1: the bottleneck is one "
                 "direct meeting, as in the proof.)\n";
  }

  {
    // Tail: for alpha = 1/3 the bound promises P >= 1/(2n); the duplicate
    // construction should show a tail at least that heavy.
    std::cout << "\nTail comparison at alpha = 1/3 (threshold n ln n / 3):\n";
    text_table t({"n", "trials", "P[time >= a n ln n] measured",
                  "0.5 n^(-3a) bound"});
    for (const std::uint32_t n : {16u, 32u, 64u}) {
      const std::size_t trials = args.trials_or(3000);
      const std::uint64_t seed = args.seed_or(900 + n);
      const auto times = planted_duplicate_times(n, trials, seed, engine);
      const double threshold =
          static_cast<double>(n) * std::log(static_cast<double>(n)) / 3.0;
      std::size_t over = 0;
      for (const double x : times) over += x >= threshold ? 1 : 0;
      const double tail_mass =
          static_cast<double>(over) / static_cast<double>(trials);
      rep.add_value("tail", "tail_mass_alpha_third", "silent_n_state", n, "",
                    tail_mass, "probability");
      t.add_row({std::to_string(n), std::to_string(trials),
                 format_fixed(tail_mass, 4),
                 format_fixed(silent_tail_lower_bound(n, 1.0 / 3.0), 4)});
    }
    t.print(std::cout);
    std::cout << "  (Measured tail mass dominates the analytic lower bound, "
                 "as Observation 2.2 requires.)" << std::endl;
  }
  rep.finish();
  return 0;
}
