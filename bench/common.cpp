#include "common.hpp"

#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "analysis/table.hpp"
#include "obs/progress.hpp"
#include "pp/convergence.hpp"
#include "pp/trial.hpp"
#include "protocols/silent_n_state.hpp"
#include "util/edit_distance.hpp"
#include "util/request_spec.hpp"

namespace ssr::bench {
namespace {

constexpr std::string_view bench_flags[] = {
    "--engine",   "--trials",      "--seed",     "--out-dir",  "--no-json",
    "--history-dir", "--progress", "--profile",  "--shards",   "--max-n",
};

[[noreturn]] void reject_flag(std::string_view arg) {
  const std::string_view name = arg.substr(0, arg.find('='));
  std::cerr << "error: unknown argument '" << name << "'";
  const std::string_view suggestion = nearest_candidate(name, bench_flags);
  if (!suggestion.empty()) std::cerr << " (did you mean " << suggestion << "?)";
  std::cerr << "\nbenches accept --engine=direct|batched|sharded --shards=N"
               " --trials=N --seed=S --out-dir=DIR --no-json"
               " --history-dir=DIR --progress --profile --max-n=N\n";
  std::exit(2);
}

std::uint64_t parse_u64_value(std::string_view flag, std::string_view text) {
  std::uint64_t value = 0;
  if (text.empty()) {
    std::cerr << "error: " << flag << " needs a value\n";
    std::exit(2);
  }
  for (const char c : text) {
    if (c < '0' || c > '9') {
      std::cerr << "error: " << flag << " expects an unsigned integer, got '"
                << text << "'\n";
      std::exit(2);
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

void banner(const std::string& experiment, const std::string& artifact,
            const std::string& claim) {
  std::cout << "==================================================\n"
            << experiment << " -- reproduces " << artifact << "\n"
            << "paper claim: " << claim << "\n"
            << "==================================================\n";
}

bench_args parse_bench_args(int argc, char** argv) {
  bench_args args;
  // --engine/--shards validate through the shared request-spec builder
  // (util/request_spec.hpp), so the benches reject an unknown engine, a
  // --shards without --engine=sharded, or an explicit --shards=0 with the
  // same diagnostics as ssr_cli and ssr_serve -- nothing silently clamps.
  util::spec_builder engine_builder;
  if (argc > 0) {
    const std::string_view program = argv[0];
    args.binary = program.substr(program.find_last_of('/') + 1);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    args.argv.emplace_back(arg);
    const auto value_of = [&](std::string_view prefix)
        -> std::optional<std::string_view> {
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (const auto v = value_of("--engine=")) {
      engine_builder.set_engine(*v);
      continue;
    }
    if (const auto v = value_of("--shards=")) {
      engine_builder.set_u64_text("shards", *v);
      continue;
    }
    if (const auto v = value_of("--max-n=")) {
      args.max_n = parse_u64_value("--max-n", *v);
      continue;
    }
    if (const auto v = value_of("--trials=")) {
      args.trials = parse_u64_value("--trials", *v);
      if (*args.trials == 0) {
        std::cerr << "error: --trials must be positive\n";
        std::exit(2);
      }
      continue;
    }
    if (const auto v = value_of("--seed=")) {
      args.seed = parse_u64_value("--seed", *v);
      continue;
    }
    if (const auto v = value_of("--out-dir=")) {
      args.out_dir = *v;
      continue;
    }
    if (const auto v = value_of("--history-dir=")) {
      args.history_dir = *v;
      continue;
    }
    if (arg == "--no-json") {
      args.write_json = false;
      continue;
    }
    if (arg == "--progress") {
      obs::set_progress_default(true);
      continue;
    }
    if (arg == "--profile") {
      args.profile = true;
      continue;
    }
    reject_flag(arg);
  }
  const std::vector<util::spec_error> errors = engine_builder.finalize();
  for (const util::spec_error& e : errors) {
    // The builder also validates spec fields the benches fix themselves
    // (n, trials, ...); only the flags routed through it can error here.
    if (e.field != "engine" && e.field != "shards") continue;
    std::cerr << "error: --" << e.field << ": " << e.message << '\n';
    std::exit(2);
  }
  args.engine = engine_builder.spec().engine;
  std::cout << "engine: " << to_string(args.engine.kind);
  if (args.engine.kind == engine_kind::sharded) {
    if (args.engine.shards == 0) {
      std::cout << " (shards: hardware)";
    } else {
      std::cout << " (shards: " << args.engine.shards << ")";
    }
  }
  std::cout << "\n";
  return args;
}

reporter::reporter(const bench_args& args, std::string experiment,
                   std::string title)
    : args_(args), start_(std::chrono::steady_clock::now()) {
  report_.experiment = std::move(experiment);
  report_.title = std::move(title);
  report_.binary = args_.binary.empty() ? "bench" : args_.binary;
  report_.engine = std::string(to_string(args_.engine.kind));
  report_.argv = args_.argv;
  if (args_.profile) {
    perf_.emplace();
    if (!perf_->available()) {
      std::cerr << "profile: hardware counters unavailable ("
                << perf_->status() << "); recording wall time only\n";
    }
    profiler_.emplace(obs::timeline_options{.perf = &*perf_});
    // Root section so even benches that never reach run_trials (e.g. the
    // throughput bench driving engines directly) emit a non-empty profile.
    root_section_ = profiler_->enter("bench");
    obs::set_profiler_default(&*profiler_);
  }
}

obs::report_row& reporter::add_samples(std::string section,
                                       std::string protocol, std::uint64_t n,
                                       std::string params,
                                       std::uint64_t trials,
                                       std::uint64_t seed, std::string unit,
                                       std::vector<double> samples) {
  return report_.add_samples(std::move(section), std::move(protocol), n,
                             std::move(params), trials, seed, std::move(unit),
                             std::move(samples));
}

obs::report_row& reporter::add_value(std::string section, std::string metric,
                                     std::string protocol, std::uint64_t n,
                                     std::string params, double value,
                                     std::string unit,
                                     bool higher_is_better) {
  return report_.add_value(std::move(section), std::move(metric),
                           std::move(protocol), n, std::move(params), value,
                           std::move(unit), higher_is_better);
}

std::string reporter::finish() {
  if (profiler_.has_value()) {
    profiler_->exit(root_section_);
    obs::set_profiler_default(nullptr);
    const obs::timeline_profile profile = profiler_->profile();
    report_.profile = profile.to_json();
    const obs::profile_derived derived = obs::derive_hardware_metrics(profile);
    if (derived.valid) {
      // Hardware-stable regression gates: per-interaction rates are far
      // less sensitive to CI-runner load than wall time.
      add_value("profile", "instructions_per_interaction", "all", 0, "",
                derived.instructions_per_unit, "instructions",
                /*higher_is_better=*/false);
      add_value("profile", "cycles_per_interaction", "all", 0, "",
                derived.cycles_per_unit, "cycles",
                /*higher_is_better=*/false);
      add_value("profile", "branch_miss_rate", "all", 0, "",
                derived.branch_miss_rate, "ratio",
                /*higher_is_better=*/false);
    }
    std::string folded_path = args_.out_dir;
    if (!folded_path.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(
          std::filesystem::path(folded_path), ec);
      if (folded_path.back() != '/') folded_path += '/';
    }
    folded_path += "PROFILE_" + report_.experiment + ".folded";
    std::ofstream os(folded_path, std::ios::trunc);
    if (os) {
      profile.write_folded(os);
      std::cout << "profile: " << folded_path << "\n";
    } else {
      std::cerr << "warning: could not write '" << folded_path << "'\n";
    }
    // Finalize once; the profile block stays in the report for the (
    // idempotent) JSON rewrite below.
    profiler_.reset();
    perf_.reset();
  }
  if (!args_.write_json) return {};
  report_.git_rev = obs::git_revision();
  report_.generated_unix = static_cast<std::int64_t>(std::time(nullptr));
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  report_.wall_time_seconds = elapsed.count();
  report_.metrics = metrics_.snapshot();
  const std::string path = obs::write_report(report_, args_.out_dir);
  if (path.empty()) {
    std::cerr << "warning: could not write "
              << obs::report_filename(report_.experiment) << " under '"
              << args_.out_dir << "'\n";
  } else {
    std::cout << "report: " << path << "\n";
  }
  if (!args_.history_dir.empty()) {
    // One directory per revision; report_trend walks these in commit
    // order to build cross-revision trend tables.
    std::string rev_dir = args_.history_dir;
    if (rev_dir.back() != '/') rev_dir += '/';
    rev_dir += report_.git_rev;
    const std::string history_path = obs::write_report(report_, rev_dir);
    if (history_path.empty()) {
      std::cerr << "warning: could not write history copy under '" << rev_dir
                << "'\n";
    } else {
      std::cout << "history: " << history_path << "\n";
    }
  }
  return path;
}

std::vector<double> baseline_times(std::uint32_t n, std::size_t trials,
                                   std::uint64_t seed, engine_spec engine) {
  obs::timeline_scope phase(obs::profiler_default(), "phase.baseline");
  // The lambdas receive the engine *kind* through run_trials (its signature
  // predates engine_spec); the full spec -- shard count included -- rides in
  // via capture, and kind stays useful for the direct fast path.
  return run_trials(
      trials, seed,
      [n, engine](std::uint64_t s, engine_kind kind) -> double {
        if (kind == engine_kind::direct) {
          // Seed behavior: the Protocol 1-specialized exact jump simulator.
          rng_t rng(s);
          std::vector<std::uint32_t> ranks(n);
          for (auto& r : ranks)
            r = static_cast<std::uint32_t>(uniform_below(rng, n));
          accelerated_silent_n_state sim(n, ranks, s ^ 0x5bd1e995);
          return sim.run_to_stabilization();
        }
        silent_n_state_ssr p(n);
        rng_t rng(s);
        auto init = adversarial_configuration(p, rng);
        const auto r = measure_convergence_with(engine, p, std::move(init),
                                                s ^ 0x5bd1e995);
        if (!r.converged)
          throw std::runtime_error("baseline did not converge");
        return r.convergence_time;
      },
      {.parallel = true, .engine = engine});
}

std::vector<double> baseline_lower_bound_times(std::uint32_t n,
                                               std::size_t trials,
                                               std::uint64_t seed,
                                               engine_spec engine) {
  obs::timeline_scope phase(obs::profiler_default(),
                            "phase.baseline_lower_bound");
  silent_n_state_ssr p(n);
  const auto config = p.lower_bound_configuration();
  std::vector<std::uint32_t> ranks(n);
  for (std::uint32_t i = 0; i < n; ++i) ranks[i] = config[i].rank;
  return run_trials(
      trials, seed,
      [n, ranks, config, engine](std::uint64_t s, engine_kind kind) -> double {
        if (kind == engine_kind::direct) {
          accelerated_silent_n_state sim(n, ranks, s);
          return sim.run_to_stabilization();
        }
        const auto r = measure_convergence_with(engine, silent_n_state_ssr(n),
                                                config, s);
        if (!r.converged)
          throw std::runtime_error("baseline did not converge");
        return r.convergence_time;
      },
      {.parallel = true, .engine = engine});
}

std::vector<double> optimal_silent_times(std::uint32_t n, std::size_t trials,
                                         std::uint64_t seed,
                                         optimal_silent_scenario scenario,
                                         engine_spec engine) {
  obs::timeline_scope phase(obs::profiler_default(), "phase.optimal_silent");
  return run_trials(
      trials, seed,
      [=](std::uint64_t s, engine_kind) {
        optimal_silent_ssr p(n);
        rng_t rng(s);
        auto init = adversarial_configuration(p, scenario, rng);
        convergence_options opt;
        opt.max_parallel_time = 1e9;
        const auto r = measure_convergence_with(engine, p, std::move(init),
                                                s ^ 0x9747b28c, opt);
        if (!r.converged)
          throw std::runtime_error("optimal-silent did not converge");
        return r.convergence_time;
      },
      {.parallel = true, .engine = engine});
}

std::vector<double> sublinear_times(std::uint32_t n, std::uint32_t h,
                                    std::size_t trials, std::uint64_t seed,
                                    sublinear_scenario scenario,
                                    double confirm, bool parallel,
                                    engine_spec engine) {
  obs::timeline_scope phase(obs::profiler_default(), "phase.sublinear");
  return run_trials(
      trials, seed,
      [=](std::uint64_t s, engine_kind) {
        sublinear_time_ssr p(n, h);
        rng_t rng(s);
        auto init = adversarial_configuration(p, scenario, rng);
        convergence_options opt;
        opt.max_parallel_time = 1e8;
        opt.confirm_parallel_time = confirm;
        const auto r = measure_convergence_with(engine, p, std::move(init),
                                                s ^ 0x85ebca6b, opt);
        if (!r.converged)
          throw std::runtime_error("sublinear did not converge");
        return r.convergence_time;
      },
      {.parallel = parallel, .engine = engine});
}

std::vector<double> detection_latencies(std::uint32_t n, std::uint32_t h,
                                        std::size_t trials,
                                        std::uint64_t seed, bool parallel,
                                        engine_spec engine) {
  obs::timeline_scope phase(obs::profiler_default(), "phase.detection");
  return run_trials(
      trials, seed,
      [=](std::uint64_t s, engine_kind kind) {
        sublinear_time_ssr p(n, h);
        rng_t rng(s);
        auto init = adversarial_configuration(
            p, sublinear_scenario::single_collision, rng);
        // A Resetting agent can only appear through an interaction it takes
        // part in, so probing the two participants after each state change
        // finds the same interaction index the historical full-configuration
        // scan did.
        const auto detect = [](auto& eng) {
          const bool detected = eng.run(
              2'000'000'000ull, [](const agent_pair&) {},
              [&eng](const agent_pair& pair, bool changed) {
                if (!changed) return false;
                const auto agents = eng.agents();
                return agents[pair.initiator].role ==
                           sublinear_time_ssr::role_t::resetting ||
                       agents[pair.responder].role ==
                           sublinear_time_ssr::role_t::resetting;
              });
          if (!detected)
            throw std::runtime_error("collision never detected");
          return eng.parallel_time();
        };
        if (kind == engine_kind::direct) {
          direct_engine<sublinear_time_ssr> eng(p, std::move(init),
                                                s ^ 0xc2b2ae35);
          eng.attach_profiler(obs::profiler_default());
          return detect(eng);
        }
        if (kind == engine_kind::sharded) {
          sharded_engine<sublinear_time_ssr> eng(p, std::move(init),
                                                 s ^ 0xc2b2ae35,
                                                 {.shards = engine.shards});
          eng.attach_profiler(obs::profiler_default());
          return detect(eng);
        }
        batched_engine<sublinear_time_ssr> eng(p, std::move(init),
                                               s ^ 0xc2b2ae35);
        eng.attach_profiler(obs::profiler_default());
        return detect(eng);
      },
      {.parallel = parallel, .engine = engine});
}

std::vector<std::string> time_cells(const summary& s) {
  return {format_mean_ci(s.mean, ci95_halfwidth(s), 2), format_fixed(s.p90, 2),
          format_fixed(s.p99, 2)};
}

}  // namespace ssr::bench
