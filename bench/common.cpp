#include "common.hpp"

#include <iostream>
#include <stdexcept>

#include "analysis/table.hpp"
#include "pp/convergence.hpp"
#include "pp/simulation.hpp"
#include "pp/trial.hpp"
#include "protocols/silent_n_state.hpp"

namespace ssr::bench {

void banner(const std::string& experiment, const std::string& artifact,
            const std::string& claim) {
  std::cout << "==================================================\n"
            << experiment << " -- reproduces " << artifact << "\n"
            << "paper claim: " << claim << "\n"
            << "==================================================\n";
}

std::vector<double> baseline_times(std::uint32_t n, std::size_t trials,
                                   std::uint64_t seed) {
  return run_trials(trials, seed, [n](std::uint64_t s) {
    rng_t rng(s);
    std::vector<std::uint32_t> ranks(n);
    for (auto& r : ranks)
      r = static_cast<std::uint32_t>(uniform_below(rng, n));
    accelerated_silent_n_state sim(n, ranks, s ^ 0x5bd1e995);
    return sim.run_to_stabilization();
  });
}

std::vector<double> baseline_lower_bound_times(std::uint32_t n,
                                               std::size_t trials,
                                               std::uint64_t seed) {
  silent_n_state_ssr p(n);
  const auto config = p.lower_bound_configuration();
  std::vector<std::uint32_t> ranks(n);
  for (std::uint32_t i = 0; i < n; ++i) ranks[i] = config[i].rank;
  return run_trials(trials, seed, [n, ranks](std::uint64_t s) {
    accelerated_silent_n_state sim(n, ranks, s);
    return sim.run_to_stabilization();
  });
}

std::vector<double> optimal_silent_times(std::uint32_t n, std::size_t trials,
                                         std::uint64_t seed,
                                         optimal_silent_scenario scenario) {
  return run_trials(trials, seed, [=](std::uint64_t s) {
    optimal_silent_ssr p(n);
    rng_t rng(s);
    auto init = adversarial_configuration(p, scenario, rng);
    convergence_options opt;
    opt.max_parallel_time = 1e9;
    const auto r = measure_convergence(p, std::move(init), s ^ 0x9747b28c, opt);
    if (!r.converged) throw std::runtime_error("optimal-silent did not converge");
    return r.convergence_time;
  });
}

std::vector<double> sublinear_times(std::uint32_t n, std::uint32_t h,
                                    std::size_t trials, std::uint64_t seed,
                                    sublinear_scenario scenario,
                                    double confirm, bool parallel) {
  return run_trials(
      trials, seed,
      [=](std::uint64_t s) {
    sublinear_time_ssr p(n, h);
    rng_t rng(s);
    auto init = adversarial_configuration(p, scenario, rng);
    convergence_options opt;
    opt.max_parallel_time = 1e8;
    opt.confirm_parallel_time = confirm;
    const auto r = measure_convergence(p, std::move(init), s ^ 0x85ebca6b, opt);
    if (!r.converged) throw std::runtime_error("sublinear did not converge");
    return r.convergence_time;
      },
      parallel);
}

std::vector<double> detection_latencies(std::uint32_t n, std::uint32_t h,
                                        std::size_t trials,
                                        std::uint64_t seed, bool parallel) {
  return run_trials(
      trials, seed,
      [=](std::uint64_t s) {
        sublinear_time_ssr p(n, h);
        rng_t rng(s);
        auto init = adversarial_configuration(
            p, sublinear_scenario::single_collision, rng);
        simulation<sublinear_time_ssr> sim(p, std::move(init),
                                           s ^ 0xc2b2ae35);
        const bool detected = sim.run_until(
            [](const simulation<sublinear_time_ssr>& sm) {
              for (const auto& a : sm.agents()) {
                if (a.role == sublinear_time_ssr::role_t::resetting)
                  return true;
              }
              return false;
            },
            2'000'000'000ull);
        if (!detected) throw std::runtime_error("collision never detected");
        return sim.parallel_time();
      },
      parallel);
}

std::vector<std::string> time_cells(const summary& s) {
  return {format_mean_ci(s.mean, ci95_halfwidth(s), 2), format_fixed(s.p90, 2),
          format_fixed(s.p99, 2)};
}

}  // namespace ssr::bench
