#include "common.hpp"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "analysis/table.hpp"
#include "pp/convergence.hpp"
#include "pp/trial.hpp"
#include "protocols/silent_n_state.hpp"

namespace ssr::bench {

void banner(const std::string& experiment, const std::string& artifact,
            const std::string& claim) {
  std::cout << "==================================================\n"
            << experiment << " -- reproduces " << artifact << "\n"
            << "paper claim: " << claim << "\n"
            << "==================================================\n";
}

engine_kind engine_from_args(int argc, char** argv) {
  engine_kind engine = engine_kind::direct;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--engine=";
    if (arg.rfind(prefix, 0) == 0) {
      const auto parsed = parse_engine(arg.substr(prefix.size()));
      if (!parsed) {
        std::cerr << "error: unknown engine '" << arg.substr(prefix.size())
                  << "' (use --engine=direct|batched)\n";
        std::exit(2);
      }
      engine = *parsed;
    } else {
      std::cerr << "error: unknown argument '" << arg
                << "' (benches accept --engine=direct|batched)\n";
      std::exit(2);
    }
  }
  std::cout << "engine: " << to_string(engine) << "\n";
  return engine;
}

std::vector<double> baseline_times(std::uint32_t n, std::size_t trials,
                                   std::uint64_t seed, engine_kind engine) {
  return run_trials(
      trials, seed,
      [n](std::uint64_t s, engine_kind kind) -> double {
        if (kind == engine_kind::direct) {
          // Seed behavior: the Protocol 1-specialized exact jump simulator.
          rng_t rng(s);
          std::vector<std::uint32_t> ranks(n);
          for (auto& r : ranks)
            r = static_cast<std::uint32_t>(uniform_below(rng, n));
          accelerated_silent_n_state sim(n, ranks, s ^ 0x5bd1e995);
          return sim.run_to_stabilization();
        }
        silent_n_state_ssr p(n);
        rng_t rng(s);
        auto init = adversarial_configuration(p, rng);
        const auto r = measure_convergence_with(kind, p, std::move(init),
                                                s ^ 0x5bd1e995);
        if (!r.converged)
          throw std::runtime_error("baseline did not converge");
        return r.convergence_time;
      },
      {.parallel = true, .engine = engine});
}

std::vector<double> baseline_lower_bound_times(std::uint32_t n,
                                               std::size_t trials,
                                               std::uint64_t seed,
                                               engine_kind engine) {
  silent_n_state_ssr p(n);
  const auto config = p.lower_bound_configuration();
  std::vector<std::uint32_t> ranks(n);
  for (std::uint32_t i = 0; i < n; ++i) ranks[i] = config[i].rank;
  return run_trials(
      trials, seed,
      [n, ranks, config](std::uint64_t s, engine_kind kind) -> double {
        if (kind == engine_kind::direct) {
          accelerated_silent_n_state sim(n, ranks, s);
          return sim.run_to_stabilization();
        }
        const auto r = measure_convergence_with(kind, silent_n_state_ssr(n),
                                                config, s);
        if (!r.converged)
          throw std::runtime_error("baseline did not converge");
        return r.convergence_time;
      },
      {.parallel = true, .engine = engine});
}

std::vector<double> optimal_silent_times(std::uint32_t n, std::size_t trials,
                                         std::uint64_t seed,
                                         optimal_silent_scenario scenario,
                                         engine_kind engine) {
  return run_trials(
      trials, seed,
      [=](std::uint64_t s, engine_kind kind) {
        optimal_silent_ssr p(n);
        rng_t rng(s);
        auto init = adversarial_configuration(p, scenario, rng);
        convergence_options opt;
        opt.max_parallel_time = 1e9;
        const auto r = measure_convergence_with(kind, p, std::move(init),
                                                s ^ 0x9747b28c, opt);
        if (!r.converged)
          throw std::runtime_error("optimal-silent did not converge");
        return r.convergence_time;
      },
      {.parallel = true, .engine = engine});
}

std::vector<double> sublinear_times(std::uint32_t n, std::uint32_t h,
                                    std::size_t trials, std::uint64_t seed,
                                    sublinear_scenario scenario,
                                    double confirm, bool parallel,
                                    engine_kind engine) {
  return run_trials(
      trials, seed,
      [=](std::uint64_t s, engine_kind kind) {
        sublinear_time_ssr p(n, h);
        rng_t rng(s);
        auto init = adversarial_configuration(p, scenario, rng);
        convergence_options opt;
        opt.max_parallel_time = 1e8;
        opt.confirm_parallel_time = confirm;
        const auto r = measure_convergence_with(kind, p, std::move(init),
                                                s ^ 0x85ebca6b, opt);
        if (!r.converged)
          throw std::runtime_error("sublinear did not converge");
        return r.convergence_time;
      },
      {.parallel = parallel, .engine = engine});
}

std::vector<double> detection_latencies(std::uint32_t n, std::uint32_t h,
                                        std::size_t trials,
                                        std::uint64_t seed, bool parallel,
                                        engine_kind engine) {
  return run_trials(
      trials, seed,
      [=](std::uint64_t s, engine_kind kind) {
        sublinear_time_ssr p(n, h);
        rng_t rng(s);
        auto init = adversarial_configuration(
            p, sublinear_scenario::single_collision, rng);
        // A Resetting agent can only appear through an interaction it takes
        // part in, so probing the two participants after each state change
        // finds the same interaction index the historical full-configuration
        // scan did.
        const auto detect = [](auto& eng) {
          const bool detected = eng.run(
              2'000'000'000ull, [](const agent_pair&) {},
              [&eng](const agent_pair& pair, bool changed) {
                if (!changed) return false;
                const auto agents = eng.agents();
                return agents[pair.initiator].role ==
                           sublinear_time_ssr::role_t::resetting ||
                       agents[pair.responder].role ==
                           sublinear_time_ssr::role_t::resetting;
              });
          if (!detected)
            throw std::runtime_error("collision never detected");
          return eng.parallel_time();
        };
        if (kind == engine_kind::direct) {
          direct_engine<sublinear_time_ssr> eng(p, std::move(init),
                                                s ^ 0xc2b2ae35);
          return detect(eng);
        }
        batched_engine<sublinear_time_ssr> eng(p, std::move(init),
                                               s ^ 0xc2b2ae35);
        return detect(eng);
      },
      {.parallel = parallel, .engine = engine});
}

std::vector<std::string> time_cells(const summary& s) {
  return {format_mean_ci(s.mean, ci95_halfwidth(s), 2), format_fixed(s.p90, 2),
          format_fixed(s.p99, 2)};
}

}  // namespace ssr::bench
