// E7 -- Section 3: Propagate-Reset completes in O(log n) time (for
// D_max = Theta(log n)) and performs a *clean* reset: every agent executes
// Reset exactly once between the trigger and the next fully computing
// configuration.
//
// We drive the component through the same toy harness the unit tests use
// (a computing/resetting flag plus a reset generation counter), measure the
// trigger-to-fully-computing time across n, and verify the phase structure
// (partially triggered -> fully propagating -> fully dormant -> awakening).
#include <iostream>

#include "analysis/regression.hpp"
#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/scheduler.hpp"
#include "pp/trial.hpp"
#include "protocols/propagate_reset.hpp"

namespace {

using namespace ssr;
using namespace ssr::bench;

struct toy_agent {
  bool resetting = false;
  reset_fields reset;
  int resets = 0;
};

struct toy_hooks {
  bool is_resetting(const toy_agent& a) const { return a.resetting; }
  reset_fields& fields(toy_agent& a) const { return a.reset; }
  void enter_resetting(toy_agent& a) const { a.resetting = true; }
  void reset(toy_agent& a) const {
    a.resetting = false;
    a.reset = reset_fields{};
    ++a.resets;
  }
};

struct reset_run {
  double completion_time = 0.0;
  double dormant_time = 0.0;  // first fully dormant configuration
  bool clean = true;          // every agent reset exactly once
};

reset_run run_reset(std::uint32_t n, std::uint64_t seed) {
  std::vector<toy_agent> agents(n);
  const reset_params params{default_r_max(n), default_r_max(n) + 8};
  trigger_reset(agents[0], params, toy_hooks{});

  rng_t rng(seed);
  reset_run out;
  std::uint64_t steps = 0;
  bool seen_dormant = false;

  // Phase counters maintained incrementally: a full scan per step would
  // make the n = 8192 sweep quadratic.
  auto is_dormant = [](const toy_agent& a) {
    return a.resetting && a.reset.resetcount == 0;
  };
  std::int64_t resetting = 1, dormant = 0;

  while (resetting > 0) {
    const agent_pair pr = sample_pair(rng, n);
    toy_agent& x = agents[pr.initiator];
    toy_agent& y = agents[pr.responder];
    if (x.resetting || y.resetting) {
      const int reset_before = (x.resetting ? 1 : 0) + (y.resetting ? 1 : 0);
      const int dorm_before = (is_dormant(x) ? 1 : 0) + (is_dormant(y) ? 1 : 0);
      propagate_reset(x, y, params, toy_hooks{});
      const int reset_after = (x.resetting ? 1 : 0) + (y.resetting ? 1 : 0);
      const int dorm_after = (is_dormant(x) ? 1 : 0) + (is_dormant(y) ? 1 : 0);
      resetting += reset_after - reset_before;
      dormant += dorm_after - dorm_before;
    }
    ++steps;
    if (!seen_dormant && dormant == static_cast<std::int64_t>(n)) {
      seen_dormant = true;
      out.dormant_time = static_cast<double>(steps) / n;
    }
  }
  out.completion_time = static_cast<double>(steps) / n;
  for (const auto& a : agents) out.clean &= a.resets == 1;
  return out;
}

}  // namespace

int main() {
  banner("E7: bench_reset", "Section 3 (Propagate-Reset)",
         "completes in O(log n) time; every agent resets exactly once");

  text_table t({"n", "trials", "completion mean ± ci", "t/ln n",
                "fully-dormant by", "clean resets"});
  std::vector<double> ns, means;
  for (const std::uint32_t n : {32u, 128u, 512u, 2048u, 8192u}) {
    const std::size_t trials = n <= 2048 ? 60 : 20;
    std::vector<double> completion(trials), dormant(trials);
    std::size_t clean = 0;
    for (std::size_t i = 0; i < trials; ++i) {
      const reset_run r = run_reset(n, derive_seed(77 + n, i));
      completion[i] = r.completion_time;
      dormant[i] = r.dormant_time;
      clean += r.clean ? 1 : 0;
    }
    const summary cs = summarize(completion);
    const summary ds = summarize(dormant);
    t.add_row({std::to_string(n), std::to_string(trials),
               format_mean_ci(cs.mean, ci95_halfwidth(cs), 2),
               format_fixed(cs.mean / std::log(static_cast<double>(n)), 3),
               format_fixed(ds.mean, 2),
               std::to_string(clean) + "/" + std::to_string(trials)});
    ns.push_back(n);
    means.push_back(cs.mean);
  }
  t.print(std::cout);

  const auto fit = loglog_fit(ns, means);
  std::cout << "  log-log exponent: " << format_fixed(fit.slope, 3)
            << " (expected ~0: logarithmic completion)\n"
            << "  (Clean resets at 100%: the dormant delay prevents double "
               "awakenings, as Section 3 argues.)"
            << std::endl;
  return 0;
}
