// E7 -- Section 3: Propagate-Reset completes in O(log n) time (for
// D_max = Theta(log n)) and performs a *clean* reset: every agent executes
// Reset exactly once between the trigger and the next fully computing
// configuration.
//
// We drive the component through the same toy harness the unit tests use
// (a computing/resetting flag plus a reset generation counter), measure the
// trigger-to-fully-computing time across n, and verify the phase structure
// (partially triggered -> fully propagating -> fully dormant -> awakening).
#include <iostream>

#include "analysis/regression.hpp"
#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/scheduler.hpp"
#include "pp/sharded_scheduler.hpp"
#include "pp/trial.hpp"
#include "protocols/propagate_reset.hpp"

namespace {

using namespace ssr;
using namespace ssr::bench;

struct toy_agent {
  bool resetting = false;
  reset_fields reset;
  int resets = 0;
};

struct toy_hooks {
  bool is_resetting(const toy_agent& a) const { return a.resetting; }
  reset_fields& fields(toy_agent& a) const { return a.reset; }
  void enter_resetting(toy_agent& a) const { a.resetting = true; }
  void reset(toy_agent& a) const {
    a.resetting = false;
    a.reset = reset_fields{};
    ++a.resets;
  }
};

// The toy harness packaged as a population protocol so the run can be
// driven by either simulation engine.  interact() reports "changed"
// whenever a resetting agent took part -- conservative (countdown ticks
// always mutate state anyway) and enough for the incremental counters.
struct toy_reset_protocol {
  using agent_state = toy_agent;

  std::uint32_t n;
  reset_params params;

  std::uint32_t population_size() const { return n; }
  bool interact(toy_agent& x, toy_agent& y, rng_t&) const {
    if (!x.resetting && !y.resetting) return false;
    propagate_reset(x, y, params, toy_hooks{});
    return true;
  }
};

struct reset_run {
  double completion_time = 0.0;
  double dormant_time = 0.0;  // first fully dormant configuration
  bool clean = true;          // every agent reset exactly once
};

reset_run run_reset(std::uint32_t n, std::uint64_t seed, engine_spec spec) {
  std::vector<toy_agent> agents(n);
  const reset_params params{default_r_max(n), default_r_max(n) + 8};
  trigger_reset(agents[0], params, toy_hooks{});
  const toy_reset_protocol p{n, params};

  reset_run out;

  // Phase counters maintained incrementally: a full scan per step would
  // make the n = 8192 sweep quadratic.
  auto is_dormant = [](const toy_agent& a) {
    return a.resetting && a.reset.resetcount == 0;
  };

  const auto drive = [&](auto& eng) {
    bool seen_dormant = false;
    std::int64_t resetting = 1, dormant = 0;
    int reset_before = 0, dorm_before = 0;
    eng.run(
        UINT64_MAX,
        [&](const agent_pair& pr) {
          const auto& x = eng.agents()[pr.initiator];
          const auto& y = eng.agents()[pr.responder];
          reset_before = (x.resetting ? 1 : 0) + (y.resetting ? 1 : 0);
          dorm_before = (is_dormant(x) ? 1 : 0) + (is_dormant(y) ? 1 : 0);
        },
        [&](const agent_pair& pr, bool changed) {
          if (changed) {
            const auto& x = eng.agents()[pr.initiator];
            const auto& y = eng.agents()[pr.responder];
            resetting += (x.resetting ? 1 : 0) + (y.resetting ? 1 : 0) -
                         reset_before;
            dormant += (is_dormant(x) ? 1 : 0) + (is_dormant(y) ? 1 : 0) -
                       dorm_before;
          }
          if (!seen_dormant && dormant == static_cast<std::int64_t>(n)) {
            seen_dormant = true;
            out.dormant_time = eng.parallel_time();
          }
          return resetting == 0;
        });
    out.completion_time = eng.parallel_time();
    for (const auto& a : eng.agents()) out.clean &= a.resets == 1;
  };

  if (spec.kind == engine_kind::direct) {
    direct_engine<toy_reset_protocol> eng(p, std::move(agents), seed);
    drive(eng);
  } else if (spec.kind == engine_kind::sharded) {
    sharded_engine<toy_reset_protocol> eng(p, std::move(agents), seed,
                                           {.shards = spec.shards});
    drive(eng);
  } else {
    batched_engine<toy_reset_protocol> eng(p, std::move(agents), seed);
    drive(eng);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  banner("E7: bench_reset", "Section 3 (Propagate-Reset)",
         "completes in O(log n) time; every agent resets exactly once");
  const bench_args args = parse_bench_args(argc, argv);
  const engine_spec engine = args.engine;
  reporter rep(args, "E7", "Section 3: Propagate-Reset completion");

  text_table t({"n", "trials", "completion mean ± ci", "t/ln n",
                "fully-dormant by", "clean resets"});
  std::vector<double> ns, means;
  for (const std::uint32_t n : {32u, 128u, 512u, 2048u, 8192u}) {
    const std::size_t trials = args.trials_or(n <= 2048 ? 60 : 20);
    const std::uint64_t seed = args.seed_or(77 + n);
    std::vector<double> completion(trials), dormant(trials);
    std::size_t clean = 0;
    for (std::size_t i = 0; i < trials; ++i) {
      const reset_run r = run_reset(n, derive_seed(seed, i), engine);
      completion[i] = r.completion_time;
      dormant[i] = r.dormant_time;
      clean += r.clean ? 1 : 0;
    }
    const summary cs = summarize(completion);
    const summary ds = summarize(dormant);
    t.add_row({std::to_string(n), std::to_string(trials),
               format_mean_ci(cs.mean, ci95_halfwidth(cs), 2),
               format_fixed(cs.mean / std::log(static_cast<double>(n)), 3),
               format_fixed(ds.mean, 2),
               std::to_string(clean) + "/" + std::to_string(trials)});
    ns.push_back(n);
    means.push_back(cs.mean);
    rep.add_samples("completion", "propagate_reset", n, "", trials, seed,
                    "parallel_time", completion);
    rep.add_samples("fully_dormant", "propagate_reset", n, "", trials, seed,
                    "parallel_time", dormant);
    rep.add_value("clean", "clean_reset_fraction", "propagate_reset", n, "",
                  static_cast<double>(clean) / static_cast<double>(trials),
                  "fraction");
  }
  t.print(std::cout);

  const auto fit = loglog_fit(ns, means);
  std::cout << "  log-log exponent: " << format_fixed(fit.slope, 3)
            << " (expected ~0: logarithmic completion)\n"
            << "  (Clean resets at 100%: the dormant delay prevents double "
               "awakenings, as Section 3 argues.)"
            << std::endl;
  rep.finish();
  return 0;
}
