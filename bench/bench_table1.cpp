// E1 -- Table 1, rows 1-3: stabilization time (expected and WHP) of the
// three self-stabilizing ranking protocols as a function of n.
//
// Paper claims:
//   Silent-n-state-SSR    Theta(n^2) expected, Theta(n^2) WHP
//   Optimal-Silent-SSR    Theta(n)   expected, Theta(n log n) WHP
//   Sublinear-Time-SSR    Theta(log n) for H = Theta(log n)
//
// We report mean (+- 95% CI), p90 and p99 over seeded trials, normalized
// columns exposing the shape (t/n^2, t/n, t/ln n), and fitted log-log
// exponents across the sweep (expected ~2, ~1, ~0).
#include <cmath>
#include <iostream>

#include "analysis/regression.hpp"
#include "analysis/table.hpp"
#include "common.hpp"

namespace {

using namespace ssr;
using namespace ssr::bench;

void fit_row(const char* protocol, const std::vector<double>& ns,
             const std::vector<double>& means) {
  const linear_fit_result f = loglog_fit(ns, means);
  std::cout << "  log-log exponent (" << protocol << "): "
            << format_fixed(f.slope, 3) << "  (r^2 "
            << format_fixed(f.r_squared, 3) << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  banner("E1: bench_table1", "Table 1, rows 1-3 (time columns)",
         "Theta(n^2) vs Theta(n) [Theta(n log n) WHP] vs Theta(log n)");
  const bench_args args = parse_bench_args(argc, argv);
  const engine_spec engine = args.engine;
  reporter rep(args, "E1", "Table 1, rows 1-3 (time columns)");

  // -- Silent-n-state-SSR (accelerated exact simulation) -------------------
  {
    std::cout << "\nSilent-n-state-SSR [22], uniform random start:\n";
    text_table t({"n", "trials", "mean time ± ci", "p90", "p99", "t/n^2"});
    std::vector<double> ns, means;
    for (const std::uint32_t n : {32u, 64u, 128u, 256u, 512u, 1024u}) {
      const std::size_t trials = args.trials_or(100);
      const std::uint64_t seed = args.seed_or(42 + n);
      const auto times = baseline_times(n, trials, seed, engine);
      rep.add_samples("baseline_uniform", "silent_n_state", n, "", trials,
                      seed, "parallel_time", times);
      const summary s = summarize(times);
      auto cells = time_cells(s);
      t.add_row({std::to_string(n), std::to_string(trials), cells[0], cells[1],
                 cells[2],
                 format_fixed(s.mean / (static_cast<double>(n) * n), 4)});
      ns.push_back(n);
      means.push_back(s.mean);
    }
    t.print(std::cout);
    fit_row("baseline, expect ~2", ns, means);
  }

  // -- Optimal-Silent-SSR ---------------------------------------------------
  {
    std::cout << "\nOptimal-Silent-SSR (Sec. 4), uniform random start:\n";
    text_table t(
        {"n", "trials", "mean time ± ci", "p90", "p99", "t/n", "p99/(n ln n)"});
    std::vector<double> ns, means;
    for (const std::uint32_t n : {32u, 64u, 128u, 256u, 512u, 1024u, 2048u}) {
      const std::size_t trials = args.trials_or(n <= 512 ? 60 : 24);
      const std::uint64_t seed = args.seed_or(1000 + n);
      const auto times = optimal_silent_times(
          n, trials, seed, optimal_silent_scenario::uniform_random, engine);
      rep.add_samples("optimal_uniform", "optimal_silent", n, "", trials,
                      seed, "parallel_time", times);
      const summary s = summarize(times);
      auto cells = time_cells(s);
      const double ln_n = std::log(static_cast<double>(n));
      t.add_row({std::to_string(n), std::to_string(trials), cells[0], cells[1],
                 cells[2], format_fixed(s.mean / n, 3),
                 format_fixed(s.p99 / (n * ln_n), 4)});
      ns.push_back(n);
      means.push_back(s.mean);
    }
    t.print(std::cout);
    fit_row("optimal-silent, expect ~1", ns, means);
    // The reset machinery contributes an additive Theta(log n) term with a
    // large constant (R_max = 60 ln n, D_max = 8n dormancy), which biases
    // the whole-range exponent low; the top of the range is where the
    // linear term dominates.
    fit_row("optimal-silent, top half of range",
            std::vector<double>(ns.end() - 4, ns.end()),
            std::vector<double>(means.end() - 4, means.end()));
  }

  // -- Sublinear-Time-SSR, H = Theta(log n) ---------------------------------
  {
    std::cout << "\nSublinear-Time-SSR (Sec. 5), H = ceil(log2 n) - 1 "
                 "(= Theta(log n); the full ceil(log2 n) depth multiplies "
                 "memory by another factor of n -- the state space is "
                 "genuinely quasi-exponential), single-collision start:\n";
    text_table t({"n", "H", "trials", "mean time ± ci", "p90", "p99",
                  "t/ln n"});
    std::vector<double> ns, means;
    for (const std::uint32_t n : {8u, 16u, 32u}) {
      const auto h = static_cast<std::uint32_t>(std::ceil(
                         std::log2(static_cast<double>(n)))) - 1;
      const std::size_t trials = args.trials_or(n >= 32 ? 4 : 20);
      const std::uint64_t seed = args.seed_or(3000 + n);
      const auto times = sublinear_times(n, h, trials, seed,
                                         sublinear_scenario::single_collision,
                                         /*confirm=*/50.0,
                                         /*parallel=*/n < 32, engine);
      rep.add_samples("sublinear_collision", "sublinear", n,
                      "h=" + std::to_string(h), trials, seed,
                      "parallel_time", times);
      const summary s = summarize(times);
      auto cells = time_cells(s);
      const double ln_n = std::log(static_cast<double>(n));
      t.add_row({std::to_string(n), std::to_string(h), std::to_string(trials),
                 cells[0], cells[1], cells[2],
                 format_fixed(s.mean / ln_n, 3)});
      ns.push_back(n);
      means.push_back(s.mean);
    }
    t.print(std::cout);
    fit_row("sublinear H=Theta(log n), expect ~0-0.4 (logarithmic)", ns,
            means);
  }

  std::cout << "\nInterpretation: who wins flips exactly as in Table 1 -- the"
               "\nbaseline is quadratic, Optimal-Silent linear, and the"
               "\nH=log2(n) family grows only logarithmically (flat t/ln n)."
            << std::endl;
  rep.finish();
  return 0;
}
