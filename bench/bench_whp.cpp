// E14 -- the "WHP time" column of Table 1, as full distribution tails.
//
// Corollary 4.2: Optimal-Silent-SSR stabilizes in O(n log n) time with high
// probability (1 - O(1/n)); the baseline's Theta(n^2) holds in expectation
// *and* WHP (Table 1 row 1).  We estimate the stabilization-time CDF tails
// from 1000 seeded runs per n and check two signatures:
//   * optimal-silent: quantiles up to p99.9 stay below a fixed multiple of
//     n (the WHP n log n bound is loose here -- tails are nearly
//     exponential past the mean, so even extreme quantiles hug the mean);
//   * baseline: the whole distribution scales by n^2 -- quantile ratios
//     q/median are n-independent (distributional collapse).
#include <cmath>
#include <iostream>

#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/trial.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  using namespace ssr::bench;

  banner("E14: bench_whp", "Table 1 WHP columns + Corollary 4.2",
         "tail quantiles: baseline collapses under n^2 scaling; "
         "optimal-silent's extreme quantiles stay O(n log n)");
  const bench_args args = parse_bench_args(argc, argv);
  const engine_spec engine = args.engine;
  reporter rep(args, "E14", "Table 1 WHP columns + Corollary 4.2");

  {
    std::cout << "\nSilent-n-state-SSR, 1000 runs per n, times divided by "
                 "n^2 (distributional collapse):\n";
    text_table t({"n", "p50/n^2", "p90/n^2", "p99/n^2", "p99.9/n^2",
                  "p99.9/p50"});
    for (const std::uint32_t n : {64u, 128u, 256u, 512u}) {
      const std::size_t trials = args.trials_or(1000);
      const std::uint64_t seed = args.seed_or(7 + n);
      const auto times = baseline_times(n, trials, seed, engine);
      rep.add_samples("whp_baseline", "silent_n_state", n, "", trials, seed,
                      "parallel_time", times);
      const double n2 = static_cast<double>(n) * n;
      const double p50 = quantile(times, 0.50);
      const double p999 = quantile(times, 0.999);
      t.add_row({std::to_string(n), format_fixed(p50 / n2, 4),
                 format_fixed(quantile(times, 0.90) / n2, 4),
                 format_fixed(quantile(times, 0.99) / n2, 4),
                 format_fixed(p999 / n2, 4), format_fixed(p999 / p50, 2)});
    }
    t.print(std::cout);
    std::cout << "  (All columns flatten in n: the WHP time is Theta(n^2) "
                 "like the mean, Table 1 row 1.)\n";
  }

  {
    std::cout << "\nOptimal-Silent-SSR, 1000 runs per n (uniform-random "
                 "starts), times divided by n and by n ln n:\n";
    text_table t({"n", "p50/n", "p99/n", "p99.9/n", "p99.9/(n ln n)",
                  "p99.9/p50"});
    for (const std::uint32_t n : {64u, 128u, 256u, 512u}) {
      const std::size_t trials = args.trials_or(1000);
      const std::uint64_t seed = args.seed_or(11 + n);
      const auto times = optimal_silent_times(
          n, trials, seed, optimal_silent_scenario::uniform_random, engine);
      rep.add_samples("whp_optimal", "optimal_silent", n,
                      "scenario=uniform_random", trials, seed,
                      "parallel_time", times);
      const double p50 = quantile(times, 0.50);
      const double p999 = quantile(times, 0.999);
      const double ln_n = std::log(static_cast<double>(n));
      t.add_row({std::to_string(n), format_fixed(p50 / n, 3),
                 format_fixed(quantile(times, 0.99) / n, 3),
                 format_fixed(p999 / n, 3),
                 format_fixed(p999 / (n * ln_n), 3),
                 format_fixed(p999 / p50, 2)});
    }
    t.print(std::cout);
    std::cout << "  (Even the 1-in-1000 tail sits within ~2x the median and "
                 "comfortably under the n ln n envelope:\n   Corollary 4.2 "
                 "with room to spare -- failures of the dormant election "
                 "are rare and cost one extra\n   Theta(n) round, not a "
                 "heavy tail.)" << std::endl;
  }
  rep.finish();
  return 0;
}
