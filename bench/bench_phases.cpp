// E13 -- the phase structure of Optimal-Silent-SSR's stabilization,
// measured (Section 4's proof sketch, made quantitative).
//
// The Theta(n) upper-bound argument decomposes a run into stages:
//   detect   -- until some agent triggers Propagate-Reset (rank collision
//               in O(n), or errorcount expiry in O(E_max) own-interactions)
//   drain    -- trigger -> fully dormant population (O(log n), driven by
//               R_max = 60 ln n)
//   dormant  -- the slow leader election window (O(D_max) = O(n))
//   rank     -- awakening + binary-tree assignment (O(n), level by level)
// and argues the expected number of reset rounds is constant.  We measure
// every stage with incremental phase counters (no per-step scans) across n
// and adversarial scenarios, and report the reset-round count.
#include <iostream>

#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/convergence.hpp"
#include "pp/scheduler.hpp"
#include "pp/trial.hpp"

namespace {

using namespace ssr;
using namespace ssr::bench;

using role_t = optimal_silent_ssr::role_t;
using state_t = optimal_silent_ssr::agent_state;

struct phase_breakdown {
  double detect = 0.0;   // start -> first trigger
  double drain = 0.0;    // first trigger -> fully dormant
  double dormant = 0.0;  // fully dormant -> first awakening
  double rank = 0.0;     // first awakening -> valid ranking
  double total = 0.0;
  int reset_rounds = 0;  // number of fully-dormant episodes
  bool converged = false;
};

phase_breakdown run_phases(std::uint32_t n, optimal_silent_scenario scenario,
                           std::uint64_t seed, engine_spec spec) {
  optimal_silent_ssr p(n);
  rng_t scenario_rng(seed ^ 0x1234);
  std::vector<state_t> agents = adversarial_configuration(p, scenario,
                                                          scenario_rng);

  // Incremental phase counters.
  auto resetting = [](const state_t& s) { return s.role == role_t::resetting; };
  auto dormant = [&](const state_t& s) {
    return resetting(s) && s.reset.resetcount == 0;
  };
  std::int64_t num_resetting = 0, num_dormant = 0;
  for (const auto& s : agents) {
    num_resetting += resetting(s) ? 1 : 0;
    num_dormant += dormant(s) ? 1 : 0;
  }
  rank_tracker tracker(n);
  for (const auto& s : agents) tracker.add(p.rank_of(s));

  phase_breakdown out;
  double t_trigger = -1.0, t_dormant = -1.0, t_awake = -1.0;
  bool was_fully_dormant = num_dormant == static_cast<std::int64_t>(n);
  const std::uint64_t cap = static_cast<std::uint64_t>(1e6) * n;

  // Phase markers are sampled at surfaced interactions.  Counters only move
  // on state changes, which every engine surfaces; the batched engine's
  // certainly-null skips (settled/settled pairs of distinct ranks) can defer
  // a marker only by the geometric gap to the next maybe-active pair, which
  // involves a resetting (hence volatile) agent whenever a marker condition
  // is live -- o(1) parallel time at these n.
  const auto drive = [&](auto& eng) {
    if (tracker.correct()) return;
    int reset_before = 0, dorm_before = 0;
    std::uint32_t ra = 0, rb = 0;
    eng.run(
        cap,
        [&](const agent_pair& pair) {
          const auto& a = eng.agents()[pair.initiator];
          const auto& b = eng.agents()[pair.responder];
          reset_before = (resetting(a) ? 1 : 0) + (resetting(b) ? 1 : 0);
          dorm_before = (dormant(a) ? 1 : 0) + (dormant(b) ? 1 : 0);
          ra = p.rank_of(a);
          rb = p.rank_of(b);
        },
        [&](const agent_pair& pair, bool changed) {
          const auto& a = eng.agents()[pair.initiator];
          const auto& b = eng.agents()[pair.responder];
          if (changed) {
            tracker.update(ra, p.rank_of(a));
            tracker.update(rb, p.rank_of(b));
            num_resetting +=
                (resetting(a) ? 1 : 0) + (resetting(b) ? 1 : 0) - reset_before;
            num_dormant +=
                (dormant(a) ? 1 : 0) + (dormant(b) ? 1 : 0) - dorm_before;
          }
          const double t = eng.parallel_time();
          if (t_trigger < 0 && num_resetting > 0) t_trigger = t;
          const bool fully_dormant =
              num_dormant == static_cast<std::int64_t>(n);
          if (fully_dormant && !was_fully_dormant) {
            ++out.reset_rounds;
            if (t_dormant < 0) t_dormant = t;
          }
          // First awakening: a computing agent appears after a fully dormant
          // episode was seen.
          if (t_awake < 0 && t_dormant >= 0 &&
              num_resetting < static_cast<std::int64_t>(n)) {
            t_awake = t;
          }
          was_fully_dormant = fully_dormant;
          return tracker.correct();
        });
    out.total = eng.parallel_time();
  };

  if (spec.kind == engine_kind::direct) {
    direct_engine<optimal_silent_ssr> eng(p, std::move(agents), seed);
    drive(eng);
  } else if (spec.kind == engine_kind::sharded) {
    sharded_engine<optimal_silent_ssr> eng(p, std::move(agents), seed,
                                           {.shards = spec.shards});
    drive(eng);
  } else {
    batched_engine<optimal_silent_ssr> eng(p, std::move(agents), seed);
    drive(eng);
  }

  out.converged = tracker.correct();
  if (t_trigger >= 0) {
    out.detect = t_trigger;
    if (t_dormant >= 0) {
      out.drain = t_dormant - t_trigger;
      if (t_awake >= 0) {
        out.dormant = t_awake - t_dormant;
        out.rank = out.total - t_awake;
      }
    }
  } else {
    out.detect = out.total;  // already-correct starts never trigger
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  banner("E13: bench_phases", "Section 4 (proof-stage decomposition)",
         "detect O(n) + drain O(log n) + dormant O(n) + rank O(n), with a "
         "constant expected number of reset rounds");
  const bench_args args = parse_bench_args(argc, argv);
  const engine_spec engine = args.engine;
  reporter rep(args, "E13", "Section 4 proof-stage decomposition");

  for (const auto scenario : {optimal_silent_scenario::duplicated_ranks,
                              optimal_silent_scenario::no_leader,
                              optimal_silent_scenario::uniform_random}) {
    std::cout << "\nscenario: " << to_string(scenario) << '\n';
    text_table t({"n", "trials", "detect", "drain", "dormant", "rank",
                  "total", "reset rounds"});
    for (const std::uint32_t n : {64u, 128u, 256u, 512u}) {
      const std::size_t trials = args.trials_or(30);
      const std::uint64_t seed = args.seed_or(5 + n);
      std::vector<double> detect(trials), drain(trials), dormantv(trials),
          rank(trials), total(trials), rounds(trials);
      parallel_for_index(trials, [&](std::size_t i) {
        const auto r = run_phases(n, scenario, derive_seed(seed, i), engine);
        detect[i] = r.detect;
        drain[i] = r.drain;
        dormantv[i] = r.dormant;
        rank[i] = r.rank;
        total[i] = r.total;
        rounds[i] = r.reset_rounds;
      });
      t.add_row({std::to_string(n), std::to_string(trials),
                 format_fixed(summarize(detect).mean, 1),
                 format_fixed(summarize(drain).mean, 1),
                 format_fixed(summarize(dormantv).mean, 1),
                 format_fixed(summarize(rank).mean, 1),
                 format_fixed(summarize(total).mean, 1),
                 format_fixed(summarize(rounds).mean, 2)});
      const std::string params =
          std::string("scenario=") + std::string(to_string(scenario));
      rep.add_samples("phase_total", "optimal_silent", n, params, trials,
                      seed, "parallel_time", total);
      rep.add_samples("phase_detect", "optimal_silent", n, params, trials,
                      seed, "parallel_time", detect);
      rep.add_samples("phase_dormant", "optimal_silent", n, params, trials,
                      seed, "parallel_time", dormantv);
    }
    t.print(std::cout);
  }

  std::cout << "\nInterpretation: detect scales with the error type -- "
               "n/2 duplicated pairs collide in O(1) time, a missing\n"
               "leader takes ~E_max/2 = 10n of patience, and "
               "uniform-random starts already contain triggered agents.\n"
               "Drain grows only logarithmically (R_max = 60 ln n); the "
               "dormant election window ~D_max/2 = 4n dominates;\nrank is "
               "the Theta(n) tree fill.  Reset rounds stay at 1.00: the "
               "slow election almost always yields a unique\nleader on the "
               "first try -- the 'constant expected repeats' of Section 4."
            << std::endl;
  rep.finish();
  return 0;
}
