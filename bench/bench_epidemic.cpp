// E6 -- Section 2's probabilistic tools: two-way epidemic, roll call
// (~1.5x epidemic), and the bounded epidemic with E[tau_k] = O(k n^{1/k}).
//
// These processes justify the protocols' running times: epidemics carry
// resets and rosters in O(log n) time, and the bounded epidemic's tau_k is
// exactly the collision-detection latency of depth-H history trees (with
// k = H + 1), explaining Table 1, row 4.
#include <cmath>
#include <iostream>

#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/trial.hpp"
#include "processes/bounded_epidemic.hpp"
#include "processes/epidemic.hpp"
#include "processes/roll_call.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  using namespace ssr::bench;

  banner("E6: bench_epidemic", "Section 2 (probabilistic tools) + Sec. 1.1",
         "epidemic Theta(log n); roll call ~1.5x epidemic; "
         "E[tau_k] = O(k n^{1/k})");
  const bench_args args = parse_bench_args(argc, argv);
  reporter rep(args, "E6", "Section 2: epidemic / roll call / bounded epidemic");
  if (args.engine.kind != engine_kind::direct) {
    std::cout << "(note: the tool processes have their own specialized "
                 "simulators; the flag\n selects nothing here)\n";
  }

  {
    std::cout << "\nTwo-way epidemic vs roll call:\n";
    text_table t({"n", "trials", "epidemic mean ± ci", "t/ln n",
                  "roll call mean ± ci", "ratio"});
    for (const std::uint32_t n : {64u, 256u, 1024u, 4096u}) {
      const std::size_t trials = args.trials_or(n <= 1024 ? 100 : 40);
      const std::uint64_t eseed = args.seed_or(3 + n);
      const std::uint64_t rseed = args.seed_or(7 + n);
      const auto et = run_trials(trials, eseed, [n](std::uint64_t s) {
        return run_epidemic(n, s).completion_time;
      });
      const auto rt = run_trials(trials, rseed, [n](std::uint64_t s) {
        return run_roll_call(n, s).completion_time;
      });
      rep.add_samples("epidemic", "two_way_epidemic", n, "", trials, eseed,
                      "parallel_time", et);
      rep.add_samples("roll_call", "roll_call", n, "", trials, rseed,
                      "parallel_time", rt);
      const summary es = summarize(et);
      const summary rs = summarize(rt);
      t.add_row({std::to_string(n), std::to_string(trials),
                 format_mean_ci(es.mean, ci95_halfwidth(es), 2),
                 format_fixed(es.mean / std::log(static_cast<double>(n)), 3),
                 format_mean_ci(rs.mean, ci95_halfwidth(rs), 2),
                 format_fixed(rs.mean / es.mean, 3)});
    }
    t.print(std::cout);
    std::cout << "  (Flat t/ln n: epidemics finish in Theta(log n); the roll "
                 "call ratio sits near the paper's 1.5.)\n";
  }

  {
    std::cout << "\nBounded epidemic hitting times E[tau_k] (source->target "
                 "path of length <= k):\n";
    const std::uint32_t n = 1024;
    const std::uint32_t max_k = 8;
    // Each k gets its own runs: a run for threshold k continues until the
    // target has heard the epidemic via a path of length <= k, so the
    // recorded hit time is exactly tau_k.
    text_table t({"k", "samples", "E[tau_k] mean ± ci", "k*n^(1/k)",
                  "tau_k/pred"});
    for (std::uint32_t k = 1; k <= max_k; ++k) {
      const std::size_t trials = args.trials_or(k == 1 ? 40 : 60);
      const std::uint64_t kseed = args.seed_or(33 + k);
      const auto samples = run_trials(trials, kseed, [&](std::uint64_t s) {
        return run_bounded_epidemic(n, k, s).hit_time[k];
      });
      rep.add_samples("bounded_epidemic", "bounded_epidemic", n,
                      "k=" + std::to_string(k), trials, kseed,
                      "parallel_time", samples);
      const summary s = summarize(samples);
      const double pred =
          k * std::pow(static_cast<double>(n), 1.0 / static_cast<double>(k));
      t.add_row({std::to_string(k), std::to_string(s.count),
                 format_mean_ci(s.mean, ci95_halfwidth(s), 2),
                 format_fixed(pred, 1), format_fixed(s.mean / pred, 3)});
    }
    t.print(std::cout);
    std::cout << "  (tau_1 ~ n/2 is a direct meeting; tau_2 ~ sqrt(n); the "
                 "tau_k/pred column stays bounded, matching "
                 "E[tau_k] = O(k n^{1/k}); tau_k flattens to O(log n) for "
                 "large k.)"
              << std::endl;
  }
  rep.finish();
  return 0;
}
