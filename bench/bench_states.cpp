// E3 -- Table 1, states column: n vs O(n) vs exp(O(n^H) log n).
//
// Exact counts for the two linear-state protocols; per-agent memory in bits
// (log2 of the state count) for Sublinear-Time-SSR, whose roster alone has
// ~n^{3n} possible values.
#include <cmath>
#include <iostream>

#include "analysis/table.hpp"
#include "common.hpp"
#include "protocols/state_space.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  using namespace ssr::bench;

  banner("E3: bench_states", "Table 1 (states column) + Theorem 2.1",
         "baseline n states (optimal); Optimal-Silent O(n); "
         "Sublinear exp(O(n^H) log n)");
  const bench_args args = parse_bench_args(argc, argv);
  reporter rep(args, "E3", "Table 1, states column");
  if (args.engine.kind != engine_kind::direct) {
    std::cout << "(note: state counting is arithmetic, no simulation runs; "
                 "the flag selects nothing here)\n";
  }

  {
    std::cout << "\nExact state counts (linear-state protocols):\n";
    text_table t({"n", "Silent-n-state [22]", "Optimal-Silent-SSR",
                  "ratio optimal/n"});
    for (const std::uint32_t n : {16u, 64u, 256u, 1024u, 4096u}) {
      const auto baseline = silent_n_state_states(n);
      const auto optimal =
          optimal_silent_states(n, optimal_silent_ssr::tuning::defaults(n));
      t.add_row({std::to_string(n), std::to_string(baseline),
                 std::to_string(optimal),
                 format_fixed(static_cast<double>(optimal) / n, 2)});
      rep.add_value("states", "state_count", "silent_n_state", n, "",
                    static_cast<double>(baseline), "states",
                    /*higher_is_better=*/false);
      rep.add_value("states", "state_count", "optimal_silent", n, "",
                    static_cast<double>(optimal), "states",
                    /*higher_is_better=*/false);
    }
    t.print(std::cout);
    std::cout << "  (Theorem 2.1: >= n states are necessary; the baseline "
                 "meets the bound exactly,\n   Optimal-Silent-SSR stays "
                 "within a constant factor.)\n";
  }

  {
    std::cout << "\nSublinear-Time-SSR per-agent memory (bits = log2 states):\n";
    text_table t({"n", "H=0", "H=1", "H=2", "H=3", "H=log2 n"});
    for (const std::uint32_t n : {16u, 64u, 256u}) {
      const auto log2n = static_cast<std::uint32_t>(
          std::ceil(std::log2(static_cast<double>(n))));
      std::vector<std::string> row{std::to_string(n)};
      for (const std::uint32_t h : {0u, 1u, 2u, 3u, log2n}) {
        const double bits = sublinear_state_bits(
            n, sublinear_time_ssr::tuning::defaults(n, h));
        row.push_back(format_count(bits));
        rep.add_value("state_bits", "per_agent_bits", "sublinear", n,
                      "h=" + std::to_string(h), bits, "bits",
                      /*higher_is_better=*/false);
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
    std::cout << "  (Already H = 0/1 is exponential in states -- the roster "
                 "needs ~3 n log2 n bits --\n   and each extra tree level "
                 "multiplies the tree term by n, matching exp(O(n^H) log n).)"
              << std::endl;
  }
  rep.finish();
  return 0;
}
