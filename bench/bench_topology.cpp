// E9 -- the complete-graph assumption, quantified (exploratory; the paper
// assumes the complete graph throughout and cites [11, 25, 57, 60] for
// other topologies).
//
// Protocol 1's stabilization argument needs colliding agents to meet
// directly; remove edges and the argument -- and the protocol -- breaks.
// tests/topology_test.cpp proves this exhaustively at n = 4 (ring/star
// counterexamples); here we measure how fast failure sets in as edges are
// deleted from the complete graph, and that Optimal-Silent-SSR (whose
// collision detection has the same direct-meeting structure and whose
// ranking needs parent-child adjacency) degrades the same way.
#include <iostream>

#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/graph_simulation.hpp"
#include "pp/trial.hpp"
#include "protocols/silent_n_state.hpp"

namespace {

using namespace ssr;
using namespace ssr::bench;

struct outcome {
  int converged = 0;
  int total = 0;
  std::vector<double> times;  // converged runs only
};

template <class P, class MakeConfig>
outcome run_on_graph(const P& p, const interaction_graph& base_graph,
                     MakeConfig make_config, std::size_t trials,
                     std::uint64_t seed, double max_time,
                     bool regenerate_graph = false, double er_p = 1.0) {
  outcome out;
  out.total = static_cast<int>(trials);
  const std::uint32_t n = p.population_size();
  for (std::size_t i = 0; i < trials; ++i) {
    const std::uint64_t s = derive_seed(seed, i);
    const interaction_graph g =
        regenerate_graph ? interaction_graph::erdos_renyi(n, er_p, s)
                         : base_graph;
    rng_t rng(s);
    graph_simulation<P> sim(p, g, make_config(rng), s ^ 0x7f4a7c15);
    const auto limit =
        static_cast<std::uint64_t>(max_time * static_cast<double>(n));
    const bool done = sim.run_until(
        [](const graph_simulation<P>& sm) {
          return is_valid_ranking(sm.protocol(), sm.agents());
        },
        limit);
    if (done) {
      ++out.converged;
      out.times.push_back(sim.parallel_time());
    }
  }
  return out;
}

std::string rate(const outcome& o) {
  return std::to_string(o.converged) + "/" + std::to_string(o.total);
}

std::string mean_time(const outcome& o) {
  if (o.times.empty()) return "--";
  return format_fixed(summarize(o.times).mean, 1);
}

}  // namespace

int main(int argc, char** argv) {
  banner("E9: bench_topology",
         "the complete-graph model assumption (Sections 1-2)",
         "off the complete graph, self-stabilization fails: colliding "
         "agents that are not adjacent can never be detected");
  const bench_args args = parse_bench_args(argc, argv);
  reporter rep(args, "E9", "Complete-graph assumption, quantified");
  if (args.engine.kind != engine_kind::direct) {
    std::cout << "(note: this bench samples interactions from non-complete "
                 "graphs, which only the\n graph simulator supports -- the "
                 "engines assume the uniform complete-graph\n scheduler, so "
                 "the flag selects nothing here)\n";
  }

  const std::uint32_t n = 16;
  silent_n_state_ssr baseline(n);
  auto random_ranks = [&](rng_t& rng) {
    std::vector<silent_n_state_ssr::agent_state> config(n);
    for (auto& s : config)
      s.rank = static_cast<std::uint32_t>(uniform_below(rng, n));
    return config;
  };

  {
    std::cout << "\nSilent-n-state-SSR, random start, fixed topologies "
                 "(n = " << n << ", budget 50000 time units):\n";
    text_table t({"graph", "edges", "converged", "mean time (conv. runs)"});
    struct named_graph {
      const char* name;
      interaction_graph g;
    };
    const named_graph graphs[] = {
        {"complete", interaction_graph::complete(n)},
        {"random 8-regular", interaction_graph::random_regular(n, 8, 7)},
        {"random 4-regular", interaction_graph::random_regular(n, 4, 7)},
        {"ring", interaction_graph::ring(n)},
        {"star", interaction_graph::star(n)},
    };
    for (const auto& [name, g] : graphs) {
      const auto out = run_on_graph(baseline, g, random_ranks,
                                    args.trials_or(40), args.seed_or(11),
                                    50'000.0);
      t.add_row({name, std::to_string(g.edge_count()), rate(out),
                 mean_time(out)});
      rep.add_value("topology_fixed", "convergence_fraction",
                    "silent_n_state", n, std::string("graph=") + name,
                    static_cast<double>(out.converged) / out.total,
                    "fraction");
    }
    t.print(std::cout);
  }

  {
    std::cout << "\nSilent-n-state-SSR on G(n, p), fresh graph per trial "
                 "(n = " << n << "):\n";
    text_table t({"edge prob p", "converged", "mean time (conv. runs)"});
    for (const double p : {1.0, 0.95, 0.9, 0.8, 0.6}) {
      const auto out = run_on_graph(baseline, interaction_graph::complete(n),
                                    random_ranks, args.trials_or(40),
                                    args.seed_or(23), 50'000.0,
                                    /*regenerate_graph=*/true, p);
      t.add_row({format_fixed(p, 2), rate(out), mean_time(out)});
      rep.add_value("topology_gnp", "convergence_fraction", "silent_n_state",
                    n, "p=" + format_fixed(p, 2),
                    static_cast<double>(out.converged) / out.total,
                    "fraction");
    }
    t.print(std::cout);
    std::cout << "  (Every non-converged run ends in a silent incorrect "
                 "configuration -- a collision across a missing edge; see "
                 "tests/topology_test.cpp for the exhaustive n = 4 proof.)\n";
  }

  {
    const std::uint32_t on = 16;
    optimal_silent_ssr optimal(on);
    auto adversarial = [&](rng_t& rng) {
      return adversarial_configuration(
          optimal, optimal_silent_scenario::uniform_random, rng);
    };
    std::cout << "\nOptimal-Silent-SSR on G(n, p) (n = " << on
              << ", budget 50000 time units):\n";
    text_table t({"edge prob p", "converged", "mean time (conv. runs)"});
    for (const double p : {1.0, 0.95, 0.9, 0.8}) {
      const auto out = run_on_graph(optimal, interaction_graph::complete(on),
                                    adversarial, args.trials_or(25),
                                    args.seed_or(37), 50'000.0,
                                    /*regenerate_graph=*/true, p);
      t.add_row({format_fixed(p, 2), rate(out), mean_time(out)});
      rep.add_value("topology_gnp", "convergence_fraction", "optimal_silent",
                    on, "p=" + format_fixed(p, 2),
                    static_cast<double>(out.converged) / out.total,
                    "fraction");
    }
    t.print(std::cout);
    std::cout << "  (A contrast the paper does not explore: Optimal-Silent-"
                 "SSR degrades gracefully where the baseline deadlocks.  A "
                 "failed tree assignment times out into a fresh reset with "
                 "a new random leader, so missing adjacencies cost retries "
                 "-- note the mean time blowing up as p drops -- rather "
                 "than correctness on typical runs.  Worst-case "
                 "self-stabilization is still lost off the complete graph "
                 "(tests/topology_test.cpp); [57] shows what a real "
                 "generalization takes.)" << std::endl;
  }
  rep.finish();
  return 0;
}
