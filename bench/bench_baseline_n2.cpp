// E5 -- Section 2's Theta(n^2) analysis of Silent-n-state-SSR.
//
// Paper claims: (a) from the lower-bound configuration (two agents at rank
// 0, rank n-1 vacant) stabilization needs n-1 consecutive bottleneck
// transitions of expected Theta(n) time each, so Theta(n^2) total; (b) the
// upper bound is also O(n^2) from *any* configuration (barrier-rank
// argument).  We measure both starts with the exact accelerated simulator up
// to n = 4096 and fit the exponents.
#include <iostream>

#include "analysis/regression.hpp"
#include "analysis/table.hpp"
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace ssr;
  using namespace ssr::bench;

  banner("E5: bench_baseline_n2", "Section 2 (baseline time analysis)",
         "Theta(n^2) from the lower-bound configuration and from random "
         "configurations");
  const bench_args args = parse_bench_args(argc, argv);
  const engine_spec engine = args.engine;
  reporter rep(args, "E5", "Section 2: baseline Theta(n^2) analysis");

  std::vector<double> ns, lb_means, rnd_means;
  text_table t({"n", "trials", "lower-bound start: mean ± ci", "t/n^2",
                "random start: mean ± ci", "t/n^2"});
  for (const std::uint32_t n : {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const std::size_t trials = args.trials_or(n <= 1024 ? 100 : 40);
    const std::uint64_t lb_seed = args.seed_or(5 + n);
    const std::uint64_t rnd_seed = args.seed_or(17 + n);
    const auto lb = baseline_lower_bound_times(n, trials, lb_seed, engine);
    const auto rnd = baseline_times(n, trials, rnd_seed, engine);
    rep.add_samples("lower_bound_start", "silent_n_state", n, "", trials,
                    lb_seed, "parallel_time", lb);
    rep.add_samples("random_start", "silent_n_state", n, "", trials,
                    rnd_seed, "parallel_time", rnd);
    const summary ls = summarize(lb);
    const summary rs = summarize(rnd);
    const double n2 = static_cast<double>(n) * n;
    t.add_row({std::to_string(n), std::to_string(trials),
               format_mean_ci(ls.mean, ci95_halfwidth(ls), 1),
               format_fixed(ls.mean / n2, 4),
               format_mean_ci(rs.mean, ci95_halfwidth(rs), 1),
               format_fixed(rs.mean / n2, 4)});
    ns.push_back(n);
    lb_means.push_back(ls.mean);
    rnd_means.push_back(rs.mean);
  }
  t.print(std::cout);

  const auto lb_fit = loglog_fit(ns, lb_means);
  const auto rnd_fit = loglog_fit(ns, rnd_means);
  std::cout << "  log-log exponent, lower-bound start: "
            << format_fixed(lb_fit.slope, 3) << " (r^2 "
            << format_fixed(lb_fit.r_squared, 3) << "), expected ~2\n"
            << "  log-log exponent, random start:      "
            << format_fixed(rnd_fit.slope, 3) << " (r^2 "
            << format_fixed(rnd_fit.r_squared, 3) << "), expected ~2\n"
            << "  (Both t/n^2 columns flatten to constants: Theta(n^2) upper "
               "and lower bounds meet.)"
            << std::endl;
  rep.finish();
  return 0;
}
