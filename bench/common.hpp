// Shared measurement plumbing for the experiment binaries (DESIGN.md E1-E7).
//
// Every experiment measures stabilization times over many seeded trials and
// prints paper-style rows; the helpers here own the repetitive parts:
// per-protocol trial functions, summary formatting, and a banner that ties
// each binary back to the table/figure it reproduces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/statistics.hpp"
#include "protocols/adversary.hpp"

namespace ssr::bench {

/// Prints the experiment banner: id, paper artifact, and what is measured.
void banner(const std::string& experiment, const std::string& artifact,
            const std::string& claim);

/// Stabilization times (parallel) of the accelerated baseline from uniform
/// random configurations.
std::vector<double> baseline_times(std::uint32_t n, std::size_t trials,
                                   std::uint64_t seed);

/// Stabilization times of the accelerated baseline from the paper's
/// Omega(n^2) lower-bound configuration.
std::vector<double> baseline_lower_bound_times(std::uint32_t n,
                                               std::size_t trials,
                                               std::uint64_t seed);

/// Convergence times of Optimal-Silent-SSR from a scenario.
std::vector<double> optimal_silent_times(std::uint32_t n, std::size_t trials,
                                         std::uint64_t seed,
                                         optimal_silent_scenario scenario);

/// Convergence times of Sublinear-Time-SSR from a scenario.  `confirm` is
/// the extra parallel time correctness must hold (the protocol is
/// non-silent).
/// `parallel` controls multi-threaded trials: large-(n, H) history trees
/// need hundreds of MB per live simulation, so big points run sequentially.
std::vector<double> sublinear_times(std::uint32_t n, std::uint32_t h,
                                    std::size_t trials, std::uint64_t seed,
                                    sublinear_scenario scenario,
                                    double confirm, bool parallel = true);

/// Detection latency of Sublinear-Time-SSR: parallel time from the
/// single_collision configuration until any agent triggers a reset.  This
/// isolates Detect-Name-Collision from the (constant-heavy) reset and
/// re-ranking phases; Section 5.2 predicts Theta(H * n^{1/(H+1)}).
std::vector<double> detection_latencies(std::uint32_t n, std::uint32_t h,
                                        std::size_t trials,
                                        std::uint64_t seed,
                                        bool parallel = true);

/// "mean ± ci  p90  p99" cells for a sample.
std::vector<std::string> time_cells(const summary& s);

}  // namespace ssr::bench
