// Shared measurement plumbing for the experiment binaries (DESIGN.md E1-E7).
//
// Every experiment measures stabilization times over many seeded trials and
// prints paper-style rows; the helpers here own the repetitive parts:
// per-protocol trial functions, summary formatting, a banner that ties
// each binary back to the table/figure it reproduces, and the --engine
// flag every bench accepts.
//
// Engine selection (pp/engine.hpp): each trial helper takes an engine_spec.
// `direct` keeps the seed behavior: per-interaction stepping, except for
// the Protocol 1 baseline whose "direct" path has always been the
// protocol-specialized exact jump simulator (accelerated_silent_n_state) --
// truly direct stepping of a Theta(n^2)-time protocol is Theta(n^3)
// interactions and infeasible at bench sizes.  `batched` routes through the
// unified batched engine, which is distribution-equivalent
// (tests/engine_equivalence_test.cpp) and the only way to the n >= 10^6
// regime; bench_engine_scaling quantifies the gap.  `sharded` (with
// --shards=N) splits the population across worker shards -- the trial
// helpers run its sequential hooked mode (bit-identical trajectories, see
// pp/sharded_scheduler.hpp), while bench_engine_scaling drives the
// threaded run_parallel path for throughput.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/statistics.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/report.hpp"
#include "obs/timeline.hpp"
#include "pp/engine.hpp"
#include "protocols/adversary.hpp"

namespace ssr::bench {

/// Prints the experiment banner: id, paper artifact, and what is measured.
void banner(const std::string& experiment, const std::string& artifact,
            const std::string& claim);

/// The uniform bench command line (parse_bench_args):
///
///   --engine=direct|batched|sharded   engine selection (default direct)
///   --shards=N                sharded engine worker count (0 = hardware
///                             concurrency; ignored by other engines)
///   --max-n=N                 cap the n sweep for benches that scale
///                             (bench_engine_scaling's shard sweep reaches
///                             1e8 only when asked; 0 = bench default)
///   --trials=N                override every row's trial count
///   --seed=S                  override every row's base seed
///   --out-dir=DIR             where BENCH_<id>.json is written (default .)
///   --no-json                 skip the JSON artifact
///   --history-dir=DIR         also append the report under
///                             DIR/<git_rev>/ for report_trend
///   --progress                periodic heartbeat (trials done, rate, ETA)
///                             on stderr during every sweep
///   --profile                 hierarchical section profiling: hardware
///                             counters when available (wall time always),
///                             a PROFILE_<id>.folded flamegraph next to the
///                             JSON artifact, a "profile" block in it
///                             (schema 2.1), and derived
///                             instructions/cycles-per-interaction rows.
///                             Forces sequential trials.
///
/// Trial counts and seeds are per-row constants chosen by each bench, so
/// the overrides are optional: row code asks args.trials_or(default) /
/// args.seed_or(default).
struct bench_args {
  engine_spec engine = engine_kind::direct;
  std::optional<std::uint64_t> trials;
  std::optional<std::uint64_t> seed;
  std::string out_dir;
  std::string history_dir;
  bool write_json = true;
  bool profile = false;
  std::uint64_t max_n = 0;  // 0 = bench default cap
  std::string binary;             // argv[0] basename, for the report
  std::vector<std::string> argv;  // original arguments, for the report

  std::size_t trials_or(std::size_t default_trials) const {
    return trials ? static_cast<std::size_t>(*trials) : default_trials;
  }
  std::uint64_t seed_or(std::uint64_t default_seed) const {
    return seed ? *seed : default_seed;
  }
};

/// Parses the uniform flags above, prints the engine choice, and rejects
/// unknown arguments with the offending flag named and the nearest valid
/// flag suggested.  Every bench main routes its argv through this so the
/// sweep driver can flip engines / trial counts / output uniformly.
bench_args parse_bench_args(int argc, char** argv);

/// Collects rows and metrics during a bench run and emits the machine-
/// readable artifact next to the human tables: finish() stamps git rev,
/// wall time and the metrics snapshot into a versioned bench_report
/// (obs/report.hpp) and writes <out_dir>/BENCH_<experiment>.json unless
/// --no-json was given.
class reporter {
 public:
  reporter(const bench_args& args, std::string experiment,
           std::string title);

  /// Adds a per-trial sample row (stabilization times etc.).
  obs::report_row& add_samples(std::string section, std::string protocol,
                               std::uint64_t n, std::string params,
                               std::uint64_t trials, std::uint64_t seed,
                               std::string unit, std::vector<double> samples);
  /// Adds a single derived value row (rates etc.).
  obs::report_row& add_value(std::string section, std::string metric,
                             std::string protocol, std::uint64_t n,
                             std::string params, double value,
                             std::string unit, bool higher_is_better = true);

  /// Registry for this run; pass &metrics() through trial_options (or
  /// absorb engine counters into it) to land them in the report.
  obs::metrics_registry& metrics() { return metrics_; }

  /// Non-null while --profile is active (between construction and
  /// finish()); also installed as the process default profiler.
  obs::timeline_profiler* profiler() {
    return profiler_.has_value() ? &*profiler_ : nullptr;
  }

  /// Writes the artifact (prints the path) and returns the path, or ""
  /// when JSON output is disabled or the write failed (failure also prints
  /// a warning).  With --history-dir the report is additionally written
  /// under <history_dir>/<git_rev>/, the layout report_trend consumes.
  /// Idempotent: later calls rewrite the same file(s).
  std::string finish();

 private:
  bench_args args_;
  obs::bench_report report_;
  obs::metrics_registry metrics_;
  std::chrono::steady_clock::time_point start_;
  // --profile state: a counter group (gracefully degraded where perf is
  // restricted), the section collector rooted at "bench", and the root id
  // so finish() can close it.  Construction installs the profiler as the
  // process default; finish() uninstalls and finalizes it.
  std::optional<obs::perf_counter_group> perf_;
  std::optional<obs::timeline_profiler> profiler_;
  std::uint32_t root_section_ = 0;
};

/// Stabilization times (parallel) of the baseline from uniform random
/// configurations.
std::vector<double> baseline_times(std::uint32_t n, std::size_t trials,
                                   std::uint64_t seed,
                                   engine_spec engine = engine_kind::direct);

/// Stabilization times of the baseline from the paper's Omega(n^2)
/// lower-bound configuration.
std::vector<double> baseline_lower_bound_times(
    std::uint32_t n, std::size_t trials, std::uint64_t seed,
    engine_spec engine = engine_kind::direct);

/// Convergence times of Optimal-Silent-SSR from a scenario.
std::vector<double> optimal_silent_times(
    std::uint32_t n, std::size_t trials, std::uint64_t seed,
    optimal_silent_scenario scenario,
    engine_spec engine = engine_kind::direct);

/// Convergence times of Sublinear-Time-SSR from a scenario.  `confirm` is
/// the extra parallel time correctness must hold (the protocol is
/// non-silent).
/// `parallel` controls multi-threaded trials: large-(n, H) history trees
/// need hundreds of MB per live simulation, so big points run sequentially.
std::vector<double> sublinear_times(std::uint32_t n, std::uint32_t h,
                                    std::size_t trials, std::uint64_t seed,
                                    sublinear_scenario scenario,
                                    double confirm, bool parallel = true,
                                    engine_spec engine = engine_kind::direct);

/// Detection latency of Sublinear-Time-SSR: parallel time from the
/// single_collision configuration until any agent triggers a reset.  This
/// isolates Detect-Name-Collision from the (constant-heavy) reset and
/// re-ranking phases; Section 5.2 predicts Theta(H * n^{1/(H+1)}).
std::vector<double> detection_latencies(
    std::uint32_t n, std::uint32_t h, std::size_t trials, std::uint64_t seed,
    bool parallel = true, engine_spec engine = engine_kind::direct);

/// "mean ± ci  p90  p99" cells for a sample.
std::vector<std::string> time_cells(const summary& s);

}  // namespace ssr::bench
