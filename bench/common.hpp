// Shared measurement plumbing for the experiment binaries (DESIGN.md E1-E7).
//
// Every experiment measures stabilization times over many seeded trials and
// prints paper-style rows; the helpers here own the repetitive parts:
// per-protocol trial functions, summary formatting, a banner that ties
// each binary back to the table/figure it reproduces, and the --engine
// flag every bench accepts.
//
// Engine selection (pp/engine.hpp): each trial helper takes an engine_kind.
// `direct` keeps the seed behavior: per-interaction stepping, except for
// the Protocol 1 baseline whose "direct" path has always been the
// protocol-specialized exact jump simulator (accelerated_silent_n_state) --
// truly direct stepping of a Theta(n^2)-time protocol is Theta(n^3)
// interactions and infeasible at bench sizes.  `batched` routes through the
// unified batched engine, which is distribution-equivalent
// (tests/engine_equivalence_test.cpp) and the only way to the n >= 10^6
// regime; bench_engine_scaling quantifies the gap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/statistics.hpp"
#include "pp/engine.hpp"
#include "protocols/adversary.hpp"

namespace ssr::bench {

/// Prints the experiment banner: id, paper artifact, and what is measured.
void banner(const std::string& experiment, const std::string& artifact,
            const std::string& claim);

/// Parses --engine=direct|batched from a bench binary's argv (default
/// direct), prints the choice, and rejects unknown arguments.  Every bench
/// main routes its argv through this so the sweep driver can flip engines
/// uniformly.
engine_kind engine_from_args(int argc, char** argv);

/// Stabilization times (parallel) of the baseline from uniform random
/// configurations.
std::vector<double> baseline_times(std::uint32_t n, std::size_t trials,
                                   std::uint64_t seed,
                                   engine_kind engine = engine_kind::direct);

/// Stabilization times of the baseline from the paper's Omega(n^2)
/// lower-bound configuration.
std::vector<double> baseline_lower_bound_times(
    std::uint32_t n, std::size_t trials, std::uint64_t seed,
    engine_kind engine = engine_kind::direct);

/// Convergence times of Optimal-Silent-SSR from a scenario.
std::vector<double> optimal_silent_times(
    std::uint32_t n, std::size_t trials, std::uint64_t seed,
    optimal_silent_scenario scenario,
    engine_kind engine = engine_kind::direct);

/// Convergence times of Sublinear-Time-SSR from a scenario.  `confirm` is
/// the extra parallel time correctness must hold (the protocol is
/// non-silent).
/// `parallel` controls multi-threaded trials: large-(n, H) history trees
/// need hundreds of MB per live simulation, so big points run sequentially.
std::vector<double> sublinear_times(std::uint32_t n, std::uint32_t h,
                                    std::size_t trials, std::uint64_t seed,
                                    sublinear_scenario scenario,
                                    double confirm, bool parallel = true,
                                    engine_kind engine = engine_kind::direct);

/// Detection latency of Sublinear-Time-SSR: parallel time from the
/// single_collision configuration until any agent triggers a reset.  This
/// isolates Detect-Name-Collision from the (constant-heavy) reset and
/// re-ranking phases; Section 5.2 predicts Theta(H * n^{1/(H+1)}).
std::vector<double> detection_latencies(
    std::uint32_t n, std::uint32_t h, std::size_t trials, std::uint64_t seed,
    bool parallel = true, engine_kind engine = engine_kind::direct);

/// "mean ± ci  p90  p99" cells for a sample.
std::vector<std::string> time_cells(const summary& s);

}  // namespace ssr::bench
