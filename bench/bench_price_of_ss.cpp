// E12 -- the price of self-stabilization (paper Conclusion, "Initialized
// ranking").
//
// The same binary-tree rank assignment runs inside three protocols with
// increasing fault tolerance:
//   1. initialized_tree_ranking -- designated start, no error handling:
//      3n+1 states, pure Theta(n) assignment time;
//   2. Optimal-Silent-SSR from its *clean* start (all Unsettled) -- must
//      first discover via errorcount expiry that no leader exists, run a
//      full Propagate-Reset with a Theta(n) dormant leader election, then
//      rank;
//   3. Optimal-Silent-SSR from *adversarial* starts -- the full
//      self-stabilizing guarantee.
// The gap between the rows is exactly what Theorem 4.1's fault tolerance
// costs: a constant factor in time (all three are Theta(n)) and the move
// from 3n+1 to O(n)-with-a-bigger-constant states -- remarkably cheap,
// which is the paper's quiet point: the expensive step is going *sublinear*
// (Table 1's exponential states), not going self-stabilizing.
#include <iostream>

#include "analysis/statistics.hpp"
#include "analysis/table.hpp"
#include "common.hpp"
#include "pp/convergence.hpp"
#include "pp/trial.hpp"
#include "protocols/initialized_ranking.hpp"
#include "protocols/state_space.hpp"

namespace {

using namespace ssr;
using namespace ssr::bench;

double initialized_mean(std::uint32_t n, std::size_t trials,
                        std::uint64_t seed) {
  initialized_tree_ranking p(n);
  const auto times = run_trials(trials, seed, [&](std::uint64_t s) {
    return measure_convergence(p, p.initial_configuration(), s)
        .convergence_time;
  });
  return summarize(times).mean;
}

double optimal_clean_mean(std::uint32_t n, std::size_t trials,
                          std::uint64_t seed) {
  const auto times = run_trials(trials, seed, [&](std::uint64_t s) {
    optimal_silent_ssr p(n);
    return measure_convergence(p, p.initial_configuration(), s,
                               {.max_parallel_time = 1e9})
        .convergence_time;
  });
  return summarize(times).mean;
}

double optimal_adversarial_mean(std::uint32_t n, std::size_t trials,
                                std::uint64_t seed, engine_spec engine) {
  const auto times = optimal_silent_times(
      n, trials, seed, optimal_silent_scenario::uniform_random, engine);
  return summarize(times).mean;
}

}  // namespace

int main(int argc, char** argv) {
  banner("E12: bench_price_of_ss", "Conclusion (initialized ranking)",
         "the same Theta(n) tree ranking, with and without the "
         "self-stabilization machinery");
  const bench_args args = parse_bench_args(argc, argv);
  const engine_spec engine = args.engine;
  reporter rep(args, "E12", "Price of self-stabilization");

  text_table t({"n", "initialized (3n+1 states)", "t/n",
                "optimal-silent, clean start", "t/n",
                "optimal-silent, adversarial", "t/n"});
  for (const std::uint32_t n : {64u, 128u, 256u, 512u, 1024u}) {
    const std::size_t trials = args.trials_or(n <= 256 ? 40 : 20);
    const double init = initialized_mean(n, trials, args.seed_or(3 + n));
    const double clean = optimal_clean_mean(n, trials, args.seed_or(17 + n));
    const double adv = optimal_adversarial_mean(n, trials,
                                                args.seed_or(31 + n), engine);
    rep.add_value("price", "initialized_mean_time", "initialized_ranking", n,
                  "", init, "parallel_time", /*higher_is_better=*/false);
    rep.add_value("price", "clean_start_mean_time", "optimal_silent", n, "",
                  clean, "parallel_time", /*higher_is_better=*/false);
    rep.add_value("price", "adversarial_mean_time", "optimal_silent", n, "",
                  adv, "parallel_time", /*higher_is_better=*/false);
    t.add_row({std::to_string(n), format_fixed(init, 1),
               format_fixed(init / n, 3), format_fixed(clean, 1),
               format_fixed(clean / n, 3), format_fixed(adv, 1),
               format_fixed(adv / n, 3)});
  }
  t.print(std::cout);

  const auto opt_states =
      optimal_silent_states(256, optimal_silent_ssr::tuning::defaults(256));
  std::cout << "\nstates at n = 256: initialized "
            << initialized_tree_ranking::state_count(256)
            << " vs self-stabilizing " << opt_states << " ("
            << format_fixed(static_cast<double>(opt_states) /
                                static_cast<double>(
                                    initialized_tree_ranking::state_count(256)),
                            1)
            << "x)\n"
            << "\nAll three columns are Theta(n) (flat t/n): Theorem 4.1's "
               "full fault tolerance costs only a\nconstant factor over the "
               "bare initialized assignment.  The clean start is the "
               "*slowest*\nself-stabilizing case: with no error present, "
               "the Unsettled patience E_max = 20n must burn\ndown "
               "(~E_max/2 time) before the pipeline even starts, whereas "
               "adversarial corruption is\nnoticed quickly and then pays "
               "only the D_max = 8n dormant election (~4n) plus ranking.\n"
               "The expensive frontier is sublinear *time* (Table 1), not "
               "fault tolerance." << std::endl;
  rep.finish();
  return 0;
}
